// Multi-process cluster benchmarks: the worker-count scaling curve for the
// TCP batch-GCD cluster (1/2/4/8 local worker processes over the same
// corpus) plus the recovery overhead when workers are being SIGKILLed under
// it. The scaling numbers are the CI gate for the process-coordinator
// path: benchdiff fails the build when a change regresses the curve.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.hpp"
#include "cluster/process_coordinator.hpp"
#include "obs/telemetry.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/fault_injector.hpp"

namespace {

using namespace weakkeys;
using bn::BigInt;

constexpr std::size_t kSubsets = 8;

const std::vector<BigInt>& corpus(std::size_t count) {
  static std::map<std::size_t, std::vector<BigInt>> cache;
  auto& moduli = cache[count];
  if (moduli.empty()) {
    rng::PrngRandomSource rng(1234);
    rsa::KeygenOptions opts;
    opts.modulus_bits = 256;
    opts.style = rsa::PrimeStyle::kPlain;
    opts.sieve_primes = 256;  // cheap synthetic corpus
    opts.miller_rabin_rounds = 4;
    moduli.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      moduli.push_back(rsa::generate_key(rng, opts).pub.n);
    }
  }
  return moduli;
}

obs::Telemetry& bench_telemetry() {
  static obs::Telemetry telemetry(/*tracing_enabled=*/false);
  return telemetry;
}

cluster::ClusterConfig base_config(std::size_t workers) {
  cluster::ClusterConfig config;
  config.subsets = kSubsets;
  config.workers = workers;
  config.worker_binary = WEAKKEYS_GCD_WORKER_BIN;
  config.retry.base = std::chrono::milliseconds(1);
  config.retry.cap = std::chrono::milliseconds(8);
  config.task_timeout = std::chrono::milliseconds(10000);
  config.heartbeat_interval = std::chrono::milliseconds(50);
  config.telemetry = &bench_telemetry();
  return config;
}

/// The scaling curve: same corpus, 1/2/4/8 worker processes. Spawn,
/// handshake, and subset/product distribution are all inside the timed
/// region — that end-to-end cost is what a deployment actually pays.
void BM_ClusterScaling(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const auto workers = static_cast<std::size_t>(state.range(0));
  cluster::ClusterStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::batch_gcd_cluster(moduli, base_config(workers), &stats));
  }
  state.counters["tasks"] = static_cast<double>(stats.tasks_executed);
  state.counters["frames_sent"] = static_cast<double>(stats.frames_sent);
}
BENCHMARK(BM_ClusterScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Recovery overhead: the coordinator SIGKILLs workers at a 5/15% per-task
/// rate and pays detection + respawn + reassignment for each. Compare
/// against BM_ClusterScaling/4 for the fault tax.
void BM_ClusterUnderSigkill(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  util::FaultConfig faults;
  faults.seed = 4242;
  faults.sigkill_probability = rate;
  const util::FaultInjector injector(faults);
  auto config = base_config(4);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(2000);
  config.restart_budget = 1u << 20;  // never degrade: measure pure recovery
  cluster::ClusterStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::batch_gcd_cluster(moduli, config, &stats));
  }
  state.counters["respawns"] = static_cast<double>(stats.respawns);
  state.counters["reassigned"] = static_cast<double>(stats.tasks_reassigned);
}
BENCHMARK(BM_ClusterUnderSigkill)
    ->Arg(5)
    ->Arg(15)
    ->Unit(benchmark::kMillisecond);

/// Reconnect tax: links are abruptly severed at a 2/5% per-frame rate, but
/// sessions survive — the worker dials back in, replays its outbox, and
/// resumes any chunked transfer mid-stream instead of being respawned and
/// re-shipped its data. Compare against BM_ClusterScaling/4 for the price
/// of a healed disconnect versus BM_ClusterUnderSigkill for a full death.
void BM_ClusterReconnectTax(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  util::FaultConfig faults;
  faults.seed = 4243;
  faults.conn_disconnect_probability = rate;
  const util::FaultInjector injector(faults);
  auto config = base_config(4);
  config.injector = &injector;
  config.session_grace = std::chrono::milliseconds(10000);
  config.task_timeout = std::chrono::milliseconds(4000);
  config.restart_budget = 1u << 20;
  cluster::ClusterStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::batch_gcd_cluster(moduli, config, &stats));
  }
  state.counters["reconnects"] = static_cast<double>(stats.reconnects);
  state.counters["stream_resumes"] = static_cast<double>(stats.stream_resumes);
  state.counters["respawns"] = static_cast<double>(stats.respawns);
}
BENCHMARK(BM_ClusterReconnectTax)
    ->Arg(2)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

/// Telemetry ablation: the same 4-worker run with the fleet observability
/// plane fully off (workers spawned with --no-telemetry, no trace context)
/// versus fully on (50 ms export cadence, trace propagation, and the merged
/// fleet trace written at the end). /1 against /0 is the tentpole's
/// overhead budget: export + merge must stay within a few percent.
void BM_ClusterTelemetry(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const bool enabled = state.range(0) != 0;
  auto config = base_config(4);
  config.telemetry_interval = std::chrono::milliseconds(enabled ? 50 : 0);
  const std::string trace_path = "bench_fleet_trace.json";
  if (enabled) config.fleet_trace_path = trace_path;
  cluster::ClusterStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::batch_gcd_cluster(moduli, config, &stats));
  }
  state.counters["snapshots"] = static_cast<double>(stats.telemetry_snapshots);
  state.counters["spans"] = static_cast<double>(stats.telemetry_spans);
  if (enabled) {
    std::remove(trace_path.c_str());
    std::remove((trace_path + ".metrics.json").c_str());
  }
}
BENCHMARK(BM_ClusterTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return weakkeys::bench::run_benchmarks_with_json("perf_cluster", argc, argv,
                                                   &bench_telemetry());
}

// Fault-tolerant coordinator benchmarks: fault-free overhead against the
// batch_gcd_distributed() fast path, journaling cost, and recovery cost
// under 5/20/50% per-task failure rates. The acceptance bar is fault-free
// overhead under ~10% — verification plus queue bookkeeping is cheap next
// to the remainder trees themselves.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "batchgcd/coordinator.hpp"
#include "batchgcd/distributed.hpp"
#include "bench_json.hpp"
#include "obs/telemetry.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace weakkeys;
using bn::BigInt;

constexpr std::size_t kSubsets = 8;
constexpr std::size_t kWorkers = 4;

const std::vector<BigInt>& corpus(std::size_t count) {
  static std::map<std::size_t, std::vector<BigInt>> cache;
  auto& moduli = cache[count];
  if (moduli.empty()) {
    rng::PrngRandomSource rng(1234);
    rsa::KeygenOptions opts;
    opts.modulus_bits = 256;
    opts.style = rsa::PrimeStyle::kPlain;
    opts.sieve_primes = 256;  // cheap synthetic corpus
    opts.miller_rabin_rounds = 4;
    moduli.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      moduli.push_back(rsa::generate_key(rng, opts).pub.n);
    }
  }
  return moduli;
}

/// Suite-wide telemetry, embedded in BENCH_perf_coordinator.json. Tracing
/// is off so task spans stay near-free across thousands of iterations; the
/// coordinator.* counters and task-latency histogram are still recorded.
obs::Telemetry& bench_telemetry() {
  static obs::Telemetry telemetry(/*tracing_enabled=*/false);
  return telemetry;
}

batchgcd::CoordinatorConfig base_config() {
  batchgcd::CoordinatorConfig config;
  config.subsets = kSubsets;
  config.workers = kWorkers;
  config.retry.base = std::chrono::milliseconds(1);
  config.retry.cap = std::chrono::milliseconds(8);
  config.straggler_deadline = std::chrono::milliseconds(1);
  config.telemetry = &bench_telemetry();
  return config;
}

/// The fault-free fast path this PR keeps: k^2 tasks on a plain thread
/// pool, no verification, no retry, no journal. Pool construction is
/// inside the loop to match the coordinator spawning its workers per run.
void BM_DistributedFastPath(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    util::ThreadPool pool(kWorkers);
    benchmark::DoNotOptimize(
        batchgcd::batch_gcd_distributed(moduli, kSubsets, &pool));
  }
}
BENCHMARK(BM_DistributedFastPath)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Coordinator with no injected faults and no checkpoint: the pure cost of
/// the work queue + per-result verification. Compare against
/// BM_DistributedFastPath at the same arg for the overhead figure.
void BM_CoordinatorFaultFree(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  batchgcd::CoordinatorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::batch_gcd_coordinated(moduli, base_config(), &stats));
  }
  state.counters["tasks"] = static_cast<double>(stats.tasks);
  state.counters["attempts"] = static_cast<double>(stats.attempts);
}
BENCHMARK(BM_CoordinatorFaultFree)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Fault-free run with the CRC-guarded journal enabled: checkpointing cost.
void BM_CoordinatorCheckpointed(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  auto config = base_config();
  config.checkpoint_path = "perf_coordinator_ckpt.tmp";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::batch_gcd_coordinated(moduli, config));
  }
  std::remove(config.checkpoint_path.c_str());
}
BENCHMARK(BM_CoordinatorCheckpointed)->Arg(512)->Unit(benchmark::kMillisecond);

/// Recovery cost: per-task failure probability of 5/20/50%, split evenly
/// between crashes, stragglers, and corrupted results.
void BM_CoordinatorFaultRate(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  util::FaultConfig faults;
  faults.seed = 99;
  faults.crash_probability = rate / 3;
  faults.straggle_probability = rate / 3;
  faults.corrupt_probability = rate / 3;
  const util::FaultInjector injector(faults);
  auto config = base_config();
  config.injector = &injector;
  batchgcd::CoordinatorStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::batch_gcd_coordinated(moduli, config, &stats));
  }
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.counters["crashes"] = static_cast<double>(stats.crashes);
  state.counters["stragglers"] = static_cast<double>(stats.stragglers_killed);
  state.counters["corruptions"] =
      static_cast<double>(stats.corruptions_caught);
}
BENCHMARK(BM_CoordinatorFaultRate)
    ->Arg(5)
    ->Arg(20)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

/// Time-to-quiescence after a cooperative cancel lands at Arg()% progress:
/// a canceller thread watches the live `coordinator.tasks_executed` counter,
/// trips the token once that fraction of the k^2 tasks has committed, and
/// manual time measures trip -> batch_gcd_coordinated unwinding with
/// util::Cancelled (worker drain + journal close). Bounded by the slowest
/// in-flight task, so it should sit near one task latency regardless of
/// progress point.
void BM_CoordinatedCancel(benchmark::State& state) {
  using clock = std::chrono::steady_clock;
  const auto& moduli = corpus(512);
  const double fraction = static_cast<double>(state.range(0)) / 100.0;
  auto& executed =
      bench_telemetry().metrics().counter("coordinator.tasks_executed");
  for (auto _ : state) {
    util::CancellationToken token;
    auto config = base_config();
    config.cancel = &token;
    const std::uint64_t before = executed.value();
    const std::uint64_t trip =
        before +
        static_cast<std::uint64_t>(fraction * kSubsets * kSubsets);
    std::atomic<std::int64_t> tripped_at_ns{0};
    std::thread canceller([&] {
      while (executed.value() < trip) std::this_thread::yield();
      tripped_at_ns.store(clock::now().time_since_epoch().count());
      token.cancel("bench cancel");
    });
    double elapsed_s = 0.0;
    try {
      batchgcd::batch_gcd_coordinated(moduli, config);
    } catch (const util::Cancelled&) {
    }
    canceller.join();
    const std::int64_t t0 = tripped_at_ns.load();
    if (t0 != 0) {
      const auto dt = clock::now().time_since_epoch().count() - t0;
      elapsed_s = static_cast<double>(dt) / 1e9;
    }
    if (elapsed_s <= 0.0) elapsed_s = 1e-9;  // lost the race: already done
    state.SetIterationTime(elapsed_s);
  }
}
BENCHMARK(BM_CoordinatedCancel)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return weakkeys::bench::run_benchmarks_with_json("perf_coordinator", argc,
                                                   argv, &bench_telemetry());
}

// Microbenchmarks for the bignum substrate, including the two ablations
// DESIGN.md calls out:
//   * Karatsuba vs schoolbook multiplication (threshold sweep),
//   * Newton-reciprocal vs Knuth Algorithm D division,
// plus Montgomery modexp and RSA keygen throughput.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"
#include "bn/detail.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"

namespace {

using namespace weakkeys;
using bn::BigInt;

BigInt random_bits_of(std::uint64_t seed, std::size_t bits) {
  rng::PrngRandomSource src(seed);
  BigInt v = bn::random_bits(src, bits);
  if (v.is_zero()) v = BigInt(1);
  return v;
}

void BM_MulSchoolbook(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(1, limbs * 64);
  const BigInt b = random_bits_of(2, limbs * 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::detail::mul_schoolbook(
        bn::BigIntOps::limbs(a), bn::BigIntOps::limbs(b)));
  }
}
BENCHMARK(BM_MulSchoolbook)->Arg(16)->Arg(64)->Arg(256);

void BM_MulKaratsuba(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(1, limbs * 64);
  const BigInt b = random_bits_of(2, limbs * 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::detail::mul_karatsuba(
        bn::BigIntOps::limbs(a), bn::BigIntOps::limbs(b)));
  }
}
BENCHMARK(BM_MulKaratsuba)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MulToom3(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(1, limbs * 64);
  const BigInt b = random_bits_of(2, limbs * 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::detail::mul_toom3(
        bn::BigIntOps::limbs(a), bn::BigIntOps::limbs(b)));
  }
}
BENCHMARK(BM_MulToom3)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_DivKnuth(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(3, limbs * 2 * 64);
  const BigInt b = random_bits_of(4, limbs * 64);
  bn::detail::LimbVec q, r;
  for (auto _ : state) {
    bn::detail::divmod_knuth(bn::BigIntOps::limbs(a), bn::BigIntOps::limbs(b),
                             q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_DivKnuth)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_DivNewton(benchmark::State& state) {
  const auto limbs = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(3, limbs * 2 * 64);
  const BigInt b = random_bits_of(4, limbs * 64);
  bn::detail::LimbVec q, r;
  for (auto _ : state) {
    bn::detail::divmod_newton(bn::BigIntOps::limbs(a), bn::BigIntOps::limbs(b),
                              q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_DivNewton)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ModPow(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt base = random_bits_of(5, bits);
  const BigInt exponent = random_bits_of(6, bits);
  BigInt modulus = random_bits_of(7, bits);
  if (modulus.is_even()) modulus += BigInt(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::mod_pow(base, exponent, modulus));
  }
}
BENCHMARK(BM_ModPow)->Arg(256)->Arg(512)->Arg(1024);

void BM_Gcd(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = random_bits_of(8, bits);
  const BigInt b = random_bits_of(9, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn::gcd(a, b));
  }
}
BENCHMARK(BM_Gcd)->Arg(256)->Arg(1024);

void BM_RsaKeygen(benchmark::State& state) {
  rng::PrngRandomSource src(10);
  rsa::KeygenOptions opts;
  opts.modulus_bits = static_cast<std::size_t>(state.range(0));
  opts.miller_rabin_rounds = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa::generate_key(src, opts));
  }
}
BENCHMARK(BM_RsaKeygen)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return weakkeys::bench::run_benchmarks_with_json("perf_bn", argc, argv);
}

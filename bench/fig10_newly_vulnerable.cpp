// Figure 10 + Section 4.4: products that became vulnerable *after* the 2012
// disclosure.
//
// Paper narrative: Huawei's first vulnerable hosts appear April 2015 and
// rise dramatically; D-Link was small in 2012 and grew; ADTRAN's HTTPS flaw
// is new in 2015; Sangfor and Schmid Telecom show small new vulnerable
// populations. These newcomers drive the rising tail of Figure 1.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 10: newly vulnerable since 2012 ==\n\n");
  const auto builder = study.series_builder();
  for (const char* vendor :
       {"ADTRAN", "D-Link", "Huawei", "Sangfor", "Schmid Telecom"}) {
    std::printf("-- %s --\n", vendor);
    bench::print_vendor_figure(study, vendor);

    // First scan with a vulnerable host: the flaw-introduction onset.
    const auto series = builder.vendor_series(vendor);
    for (const auto& p : series.points) {
      if (p.vulnerable_hosts > 0) {
        std::printf("first vulnerable host observed: %s (%s)\n",
                    p.date.to_string().c_str(), p.source.c_str());
        break;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "shape check (paper): Huawei onset 2015-04 with a sharp rise; D-Link "
      "rising from a small\n2012 base; ADTRAN onset 2015; Sangfor and Schmid "
      "small but nonzero.\n");
  return 0;
}

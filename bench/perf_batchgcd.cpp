// Microbenchmarks for the batch-GCD machinery, including the RAM-resident
// vs recompute remainder-tree ablation (the paper's key optimization over
// the original disk-spilling implementation).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/coordinator.hpp"
#include "batchgcd/distributed.hpp"
#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "bench_json.hpp"
#include "obs/monitor.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/tracked_arena.hpp"

namespace {

using namespace weakkeys;
using bn::BigInt;

const std::vector<BigInt>& corpus(std::size_t count) {
  static std::map<std::size_t, std::vector<BigInt>> cache;
  auto& moduli = cache[count];
  if (moduli.empty()) {
    rng::PrngRandomSource rng(1234);
    rsa::KeygenOptions opts;
    opts.modulus_bits = 256;
    opts.style = rsa::PrimeStyle::kPlain;
    opts.sieve_primes = 256;  // cheap synthetic corpus
    opts.miller_rabin_rounds = 4;
    moduli.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      moduli.push_back(rsa::generate_key(rng, opts).pub.n);
    }
  }
  return moduli;
}

/// Suite-wide telemetry: the enabled arms of the overhead ablations record
/// into it, and its metrics snapshot is embedded in BENCH_perf_batchgcd.json.
obs::Telemetry& bench_telemetry() {
  static obs::Telemetry telemetry(/*tracing_enabled=*/true);
  return telemetry;
}

void BM_ProductTree(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  util::TrackedArena arena;
  {
    // Census build: per-level byte/node gauges into the suite metrics
    // snapshot (batchgcd.product_tree.level<k>.* + bytes_peak). One tree at
    // a time ever lives in the arena, so Σ level bytes == arena peak —
    // the identity the profiled-run acceptance check asserts.
    batchgcd::ProductTree census(moduli, &arena);
    census.publish_level_stats(bench_telemetry().metrics());
  }
  for (auto _ : state) {
    batchgcd::ProductTree tree(moduli, &arena);
    benchmark::DoNotOptimize(tree.root());
  }
  state.counters["arena_peak_bytes"] =
      static_cast<double>(arena.peak_bytes());
}
BENCHMARK(BM_ProductTree)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BatchGcd(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(batchgcd::batch_gcd(moduli));
  }
}
BENCHMARK(BM_BatchGcd)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_NaivePairwise(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(batchgcd::naive_pairwise_gcd(moduli));
  }
}
BENCHMARK(BM_NaivePairwise)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

// Ablation: remainder tree reading RAM-resident levels vs recomputing
// internal products on the way down (the memory-lean strategy the original
// factorable.net hardware was forced into).
void BM_RemainderTreeRam(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  const batchgcd::ProductTree tree(moduli);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::remainder_tree_squares(tree, tree.root()));
  }
}
BENCHMARK(BM_RemainderTreeRam)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_RemainderTreeRecompute(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  const batchgcd::ProductTree tree(moduli);
  const BigInt root = tree.root();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::remainder_tree_squares_recompute(moduli, root));
  }
}
BENCHMARK(BM_RemainderTreeRecompute)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Storage policy for the out-of-core arms: spill every level (threshold 0)
/// into a scratch dir next to the binary, two-level resident window.
batchgcd::TreeStorage bench_storage(const char* base,
                                    util::TrackedArena* arena) {
  batchgcd::TreeStorage storage;
  storage.spill_dir = "bench_spill.d";
  storage.spill_threshold_bytes = 0;
  storage.base = base;
  storage.registry = &bench_telemetry().metrics();
  storage.arena = arena;
  return storage;
}

/// Out-of-core ablation of BM_ProductTree: the same build spilling every
/// level to a CRC-framed file with a two-level resident window. The
/// arena_peak_bytes counter is the bounded-memory proof — it charges only
/// the resident window, so it stays near-flat while tree_bytes grows with
/// the corpus; BM_ProductTree's arena peak is the whole tree. Time deltas
/// against the in-RAM arm price the spill I/O.
void BM_ProductTreeOutOfCore(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  util::TrackedArena arena;
  const batchgcd::TreeStorage storage = bench_storage("bm_build", &arena);
  std::uint64_t tree_bytes = 0;
  for (auto _ : state) {
    batchgcd::ProductTree tree(moduli, storage, &arena);
    benchmark::DoNotOptimize(tree.root());
    tree_bytes = tree.retained_bytes();
  }
  state.counters["arena_peak_bytes"] =
      static_cast<double>(arena.peak_bytes());
  state.counters["tree_bytes"] = static_cast<double>(tree_bytes);
}
BENCHMARK(BM_ProductTreeOutOfCore)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

/// Streamed remainder walk over a spilled tree: levels are re-read (and
/// CRC-verified) from disk as the walk descends, against
/// BM_RemainderTreeRam's resident levels. Completes the paper's ablation
/// triangle: RAM-resident vs recompute vs factorable.net-style disk tier.
void BM_RemainderTreeStreamed(benchmark::State& state) {
  const auto& moduli = corpus(static_cast<std::size_t>(state.range(0)));
  util::TrackedArena arena;
  const batchgcd::TreeStorage storage = bench_storage("bm_walk", &arena);
  const batchgcd::ProductTree tree(moduli, storage, &arena);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::remainder_tree_squares(tree, tree.root()));
  }
  state.counters["arena_peak_bytes"] =
      static_cast<double>(arena.peak_bytes());
}
BENCHMARK(BM_RemainderTreeStreamed)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedK(benchmark::State& state) {
  const auto& moduli = corpus(2048);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batchgcd::batch_gcd_distributed(moduli, k, nullptr));
  }
}
BENCHMARK(BM_DistributedK)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

/// Telemetry overhead ablation: the fault-tolerant coordinator with full
/// instrumentation (one span per task attempt, mirrored global and
/// per-worker counters, task-latency histogram) vs the identical run with
/// telemetry off. Arg: 0 = disabled, 1 = enabled. The acceptance bar is
/// <= 5% overhead for the enabled arm.
void BM_CoordinatedTelemetry(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const bool enabled = state.range(0) != 0;
  batchgcd::CoordinatorConfig config;
  config.subsets = 8;
  config.workers = 4;
  config.telemetry = enabled ? &bench_telemetry() : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(batchgcd::batch_gcd_coordinated(moduli, config));
  }
}
BENCHMARK(BM_CoordinatedTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Live-monitor overhead ablation: the same instrumented coordinated run
/// with the background obs::Monitor ticking (snapshot + JSONL line +
/// heartbeat every 25ms) vs without it. Arg: 0 = monitor off, 1 = on. The
/// acceptance bar is <= 5% overhead for the monitored arm: snapshots are
/// bounded by instrument count, not by event rate.
void BM_CoordinatedMonitor(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const bool monitored = state.range(0) != 0;
  batchgcd::CoordinatorConfig config;
  config.subsets = 8;
  config.workers = 4;
  config.telemetry = &bench_telemetry();
  obs::MonitorConfig monitor_config;
  monitor_config.jsonl_path = "/dev/null";  // schema cost without disk churn
  monitor_config.interval = std::chrono::milliseconds(25);
  obs::Monitor monitor(bench_telemetry(), monitor_config);
  if (monitored) monitor.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(batchgcd::batch_gcd_coordinated(moduli, config));
  }
  if (monitored) monitor.stop();
}
BENCHMARK(BM_CoordinatedMonitor)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Sampling-profiler overhead ablation: the same instrumented coordinated
/// run with the wall-clock sampler attached at the conventional 97 Hz vs
/// without it. Arg: 0 = profiler off, 1 = on. The acceptance bar is <= 5%
/// overhead for the profiled arm (and ~0% for the off arm, which pays one
/// relaxed load per span): sampling cost scales with thread count and
/// cadence, not with span rate.
void BM_CoordinatedProfile(benchmark::State& state) {
  const auto& moduli = corpus(512);
  const bool profiled = state.range(0) != 0;
  batchgcd::CoordinatorConfig config;
  config.subsets = 8;
  config.workers = 4;
  config.telemetry = &bench_telemetry();
  std::unique_ptr<obs::Profiler> profiler;
  if (profiled) {
    obs::ProfilerConfig prof_config;
    prof_config.hz = 97.0;
    prof_config.registry = &bench_telemetry().metrics();
    profiler = std::make_unique<obs::Profiler>(std::move(prof_config));
    profiler->start();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batchgcd::batch_gcd_coordinated(moduli, config));
  }
  if (profiler) {
    profiler->stop();
    state.counters["profile_samples"] =
        static_cast<double>(profiler->samples());
  }
}
BENCHMARK(BM_CoordinatedProfile)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return weakkeys::bench::run_benchmarks_with_json("perf_batchgcd", argc, argv,
                                                   &bench_telemetry());
}

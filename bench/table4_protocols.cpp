// Table 4: cross-protocol scans (HTTPS / SSH / POP3S / IMAPS / SMTPS) —
// total hosts, RSA hosts, and vulnerable hosts per protocol. The batch GCD
// runs over the union of all protocols' moduli (as in the paper), but
// vulnerable keys concentrate overwhelmingly in HTTPS.
#include <cstdio>

#include "analysis/report.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Table 4: vulnerable keys per protocol ==\n");
  analysis::TextTable table(
      {"protocol", "scan date", "hosts with RSA keys", "vulnerable hosts"});

  for (const auto proto :
       {netsim::Protocol::kHttps, netsim::Protocol::kSsh,
        netsim::Protocol::kPop3s, netsim::Protocol::kImaps,
        netsim::Protocol::kSmtps}) {
    // Most recent snapshot for the protocol (mirrors the paper's table).
    const netsim::ScanSnapshot* snap = nullptr;
    for (const auto* candidate : study.dataset().snapshots_for(proto)) {
      snap = candidate;
    }
    if (!snap) continue;
    std::size_t vulnerable = 0;
    for (const auto& rec : snap->records) {
      if (study.vulnerable().contains(rec.cert().key.n)) ++vulnerable;
    }
    table.add_row({to_string(proto), snap->date.to_string(),
                   analysis::with_commas(snap->records.size()),
                   analysis::with_commas(vulnerable)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "shape check (paper): HTTPS 59,628 vulnerable; SSH 723; all three mail "
      "protocols 0.\nExpected here: HTTPS >> SSH > 0, mail == 0.\n");
  return 0;
}

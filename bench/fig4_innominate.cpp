// Figure 4 + Section 4.1: Innominate mGuard.
//
// Paper narrative: despite a June 2012 public advisory, the vulnerable
// population stays roughly constant for four years while the total
// population grows — the fix reached new devices, never deployed ones.
#include <cstdio>

#include "analysis/transitions.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 4: Innominate mGuard ==\n");
  bench::print_vendor_figure(study, "Innominate");

  const auto series = study.series_builder().vendor_series("Innominate");
  const auto* at_advisory = series.at_or_before(util::Date(2012, 7, 1));
  const auto* at_end = series.points.empty() ? nullptr : &series.points.back();
  if (at_advisory && at_end) {
    std::printf(
        "\nvulnerable at advisory (2012-07): %zu; at study end: %zu "
        "(flat-ish expected)\ntotal at advisory: %zu; at end: %zu (growth "
        "expected)\n",
        at_advisory->vulnerable_hosts, at_end->vulnerable_hosts,
        at_advisory->total_hosts, at_end->total_hosts);
  }
  const auto counts = analysis::count_transitions(
      study.dataset(), "Innominate", study.vulnerable(), study.labeler());
  std::printf(
      "transitions (paper saw 3 v->c, 2 c->v, 1 multi out of 561): "
      "v->c %zu, c->v %zu, multi %zu of %zu ever-vulnerable IPs\n",
      counts.vulnerable_to_clean, counts.clean_to_vulnerable,
      counts.multiple_switches, counts.ips_ever_vulnerable);
  return 0;
}

// Figure 3 + Section 4.1: Juniper SRX.
//
// Paper narrative to reproduce: the number of vulnerable hosts continued to
// rise for ~two years after Juniper's April/July 2012 advisories; the single
// largest drop — in both vulnerable and total fingerprinted hosts —
// coincides with Heartbleed (April 2014, NetScreen crash reports); per-IP
// certificate histories show roughly balanced vulnerable<->clean transitions
// (1,100 / 1,200 / 250 in the paper) rather than mass patching.
#include <cstdio>

#include "analysis/transitions.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 3: Juniper ==\n");
  bench::print_vendor_figure(study, "Juniper");

  const auto counts = analysis::count_transitions(
      study.dataset(), "Juniper", study.vulnerable(), study.labeler());
  std::printf(
      "\nper-IP certificate transitions: %zu IPs ever fingerprinted, %zu ever "
      "vulnerable,\n  vulnerable->clean %zu, clean->vulnerable %zu, multiple "
      "switches %zu\n",
      counts.ips_ever, counts.ips_ever_vulnerable, counts.vulnerable_to_clean,
      counts.clean_to_vulnerable, counts.multiple_switches);
  std::printf(
      "shape check (paper): 169k ever / 34k vulnerable; 1,100 v->c, 1,200 "
      "c->v, 250 multi —\nboth directions comparable, i.e. regeneration "
      "churn, not patching.\n");
  return 0;
}

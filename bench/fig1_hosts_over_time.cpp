// Figure 1: total HTTPS hosts and hosts serving factorable keys, across all
// five scan sources over the six-year window. Per-source methodology
// artifacts (coverage steps between EFF / PQ / Ecosystem / Rapid7 / Censys)
// are visible exactly as in the paper.
#include <cstdio>

#include "analysis/report.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();
  const auto series = study.series_builder().overall_series();

  std::printf("== Figure 1: hosts and vulnerable hosts over time ==\n");
  std::printf("%s", analysis::render_series(series).c_str());

  // Shape checks the paper's narrative rests on.
  const auto* first = series.points.empty() ? nullptr : &series.points.front();
  const auto* last = series.points.empty() ? nullptr : &series.points.back();
  if (first && last) {
    std::printf("\nshape: total grows %.1fx over the study; ",
                static_cast<double>(last->total_hosts) /
                    static_cast<double>(first->total_hosts));
    std::printf("vulnerable population %s after 2012 disclosure\n",
                last->vulnerable_hosts > first->vulnerable_hosts ? "grew"
                                                                  : "shrank");
  }
  return 0;
}

// Figure 9 + Section 4.3: the vendors that never responded to notification.
//
// Paper narrative: vulnerable populations decline gradually; for Thomson,
// Linksys, ZyXEL and McAfee the vulnerable decline tracks the decline of the
// total population (device attrition, not patching); Fritz!Box rises first
// and falls only after the flaw left new firmware around 2014. Also checks
// the Dell / Xerox shared-prime overlap and the Internet Rimon middlebox.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 9: vendors that never responded ==\n\n");
  for (const char* vendor :
       {"Thomson", "Fritz!Box", "Linksys", "Fortinet", "ZyXEL", "Dell",
        "Kronos", "Xerox", "McAfee", "TP-LINK"}) {
    std::printf("-- %s --\n", vendor);
    bench::print_vendor_figure(study, vendor);
    std::printf("\n");
  }

  // Cross-vendor prime-pool overlap (Section 3.3.2: Dell printers are Fuji
  // Xerox imaging hardware).
  std::printf("-- shared-prime overlaps between vendor pools --\n");
  for (const auto& overlap : study.prime_pools().overlaps()) {
    std::printf("  %s / %s: %zu shared primes\n", overlap.vendor_a.c_str(),
                overlap.vendor_b.c_str(), overlap.shared_primes);
  }

  // The Internet Rimon fixed-key middlebox (Section 3.3.3): an unfactored
  // modulus served from many IPs under many different subjects.
  std::printf("\n-- fixed-key MITM candidates (Internet Rimon) --\n");
  for (const auto& candidate : study.mitm_candidates()) {
    if (candidate.ever_factored) continue;  // degenerate generators
    std::printf(
        "  modulus %.16s... : %zu IPs, %zu distinct subjects, %zu records, "
        "never factored\n",
        candidate.modulus.to_hex().c_str(), candidate.distinct_ips,
        candidate.distinct_subjects, candidate.records);
  }
  return 0;
}

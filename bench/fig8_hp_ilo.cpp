// Figure 8 + Section 4.2: HP Integrated Lights-Out management cards.
//
// Paper narrative: vulnerable population peaked in 2012 and declined
// steadily; the *total* HP population drops noticeably after Heartbleed
// (iLO cards reportedly crashed when scanned for it).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  std::printf("== Figure 8: HP iLO ==\n");
  bench::print_vendor_figure(study, "Hewlett-Packard");

  const auto series = study.series_builder().vendor_series("Hewlett-Packard");
  std::size_t peak_vuln = 0;
  util::Date peak_date;
  for (const auto& p : series.points) {
    if (p.vulnerable_hosts > peak_vuln) {
      peak_vuln = p.vulnerable_hosts;
      peak_date = p.date;
    }
  }
  std::printf(
      "\nvulnerable peak: %zu at %s (paper: peak in 2012, steady decline "
      "after)\n",
      peak_vuln, peak_date.to_string().c_str());
  return 0;
}

// Table 3: earliest (EFF, July 2010) vs latest (Censys, April 2016) HTTPS
// scan — handshakes, distinct certificates, distinct RSA keys.
#include <cstdio>
#include <unordered_set>

#include "analysis/report.hpp"
#include "common.hpp"

namespace {

struct ScanSummary {
  std::size_t handshakes = 0;
  std::size_t distinct_certs = 0;
  std::size_t distinct_keys = 0;
};

ScanSummary summarize(const weakkeys::netsim::ScanSnapshot& snap) {
  ScanSummary out;
  out.handshakes = snap.records.size();
  std::unordered_set<std::string> certs, keys;
  for (const auto& rec : snap.records) {
    certs.insert(std::to_string(rec.cert().serial) + "/" +
                 rec.cert().key.n.to_hex());
    keys.insert(rec.cert().key.n.to_hex());
  }
  out.distinct_certs = certs.size();
  out.distinct_keys = keys.size();
  return out;
}

}  // namespace

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();

  const netsim::ScanSnapshot* first = nullptr;
  const netsim::ScanSnapshot* last = nullptr;
  for (const auto& snap : study.dataset().snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    if (!first) first = &snap;
    last = &snap;
  }
  if (!first || !last) return 1;

  const ScanSummary a = summarize(*first);
  const ScanSummary b = summarize(*last);

  std::printf("== Table 3: earliest vs latest scan ==\n");
  analysis::TextTable table(
      {"quantity", first->source + " " + first->date.to_string(),
       last->source + " " + last->date.to_string()});
  table.add_row({"TLS handshakes", analysis::with_commas(a.handshakes),
                 analysis::with_commas(b.handshakes)});
  table.add_row({"Distinct certificates", analysis::with_commas(a.distinct_certs),
                 analysis::with_commas(b.distinct_certs)});
  table.add_row({"Distinct RSA keys", analysis::with_commas(a.distinct_keys),
                 analysis::with_commas(b.distinct_keys)});
  std::printf("%s", table.render().c_str());
  std::printf("shape check: ecosystem growth %.1fx over the study "
              "(paper: 11.3M -> 38.0M, 3.4x)\n",
              static_cast<double>(b.handshakes) / static_cast<double>(a.handshakes));
  return 0;
}

// Shared configuration for the table/figure reproduction binaries.
//
// The default corpus scale (0.2 of the catalog's 1:1000-of-reality
// populations) keeps the full pipeline — simulation, batch GCD,
// fingerprinting — around a few minutes on one core for the *first* binary
// that runs; every later binary reloads the corpus and factor caches in
// seconds. Override with WEAKKEYS_SCALE / WEAKKEYS_SEED / WEAKKEYS_CACHE.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/study.hpp"

namespace weakkeys::bench {

inline core::StudyConfig default_study_config() {
  core::StudyConfig config;
  config.sim.seed = 20160414;
  config.sim.scale = 0.2;
  config.sim.miller_rabin_rounds = 5;
  config.batch_gcd_subsets = 4;
  config.cache_path = "weakkeys_corpus.cache";

  if (const char* scale = std::getenv("WEAKKEYS_SCALE")) {
    config.sim.scale = std::atof(scale);
  }
  if (const char* seed = std::getenv("WEAKKEYS_SEED")) {
    config.sim.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* cache = std::getenv("WEAKKEYS_CACHE")) {
    config.cache_path = cache;
  }
  config.log = [](const std::string& message) {
    std::fprintf(stderr, "[study] %s\n", message.c_str());
  };
  return config;
}

/// Runs (or reloads) the shared study corpus.
inline core::Study& shared_study() {
  static core::Study study(default_study_config());
  study.run();
  return study;
}

}  // namespace weakkeys::bench

#include "analysis/events.hpp"
#include "analysis/report.hpp"
#include "netsim/catalog.hpp"

namespace weakkeys::bench {

/// Prints one vendor population figure (total + vulnerable series) plus the
/// Heartbleed-window delta the Section 4 discussions rely on.
inline void print_vendor_figure(core::Study& study, const std::string& vendor,
                                const std::string& model = "") {
  const auto series = study.series_builder().vendor_series(vendor, model);
  std::printf("%s", analysis::render_series(series).c_str());
  if (const auto delta = analysis::event_window_delta(
          series, netsim::heartbleed_date(), 2)) {
    std::printf(
        "Heartbleed window (last scan before 2014-04 vs first after +2mo): "
        "total %zu -> %zu (%.0f%%), vulnerable %zu -> %zu (%.0f%%)\n",
        delta->total_before, delta->total_after,
        100.0 * delta->total_drop_fraction(), delta->vulnerable_before,
        delta->vulnerable_after, 100.0 * delta->vulnerable_drop_fraction());
  }
}

}  // namespace weakkeys::bench

// Table 1: dataset summary — host records, distinct certificates, distinct
// moduli, and the vulnerable counts, over the six simulated years of scans.
#include <cstdio>
#include <unordered_set>

#include "analysis/report.hpp"
#include "common.hpp"

int main() {
  using namespace weakkeys;
  auto& study = bench::shared_study();
  const auto& ds = study.dataset();
  const auto& stats = study.factor_stats();

  // HTTPS-restricted views (Table 1 reports HTTPS-specific rows).
  std::size_t https_records = 0;
  std::unordered_set<std::string> https_certs, https_vuln_certs;
  std::size_t https_vuln_records = 0;
  for (const auto& snap : ds.snapshots) {
    if (snap.protocol != netsim::Protocol::kHttps) continue;
    https_records += snap.records.size();
    for (const auto& rec : snap.records) {
      const std::string key =
          std::to_string(rec.cert().serial) + "/" + rec.cert().key.n.to_hex();
      https_certs.insert(key);
      if (study.vulnerable().contains(rec.cert().key.n)) {
        ++https_vuln_records;
        https_vuln_certs.insert(key);
      }
    }
  }
  const std::size_t https_moduli =
      ds.distinct_moduli(netsim::Protocol::kHttps).size();

  analysis::TextTable table({"quantity", "value"});
  table.add_row({"HTTPS host records", analysis::with_commas(https_records)});
  table.add_row({"Distinct HTTPS certificates",
                 analysis::with_commas(https_certs.size())});
  table.add_row({"Distinct HTTPS moduli", analysis::with_commas(https_moduli)});
  table.add_rule();
  table.add_row({"Total distinct RSA moduli (all protocols)",
                 analysis::with_commas(stats.distinct_moduli)});
  table.add_row({"Vulnerable RSA moduli",
                 analysis::with_commas(study.vulnerable().size())});
  table.add_row({"Vulnerable HTTPS host records",
                 analysis::with_commas(https_vuln_records)});
  table.add_row({"Vulnerable HTTPS certificates",
                 analysis::with_commas(https_vuln_certs.size())});
  table.add_rule();
  table.add_row({"Bit-error (non-well-formed) moduli excluded",
                 analysis::with_commas(stats.bit_errors)});

  std::printf("== Table 1: dataset summary ==\n%s", table.render().c_str());
  std::printf(
      "vulnerable fraction of distinct moduli: %.2f%% (paper: 0.37%%; the "
      "simulated background\npopulation is compressed ~4x relative to the "
      "device families, which inflates the fraction\nbut preserves every "
      "per-vendor shape)\n",
      100.0 * static_cast<double>(study.vulnerable().size()) /
          static_cast<double>(stats.distinct_moduli));
  return 0;
}

#include <gtest/gtest.h>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/distributed.hpp"
#include "batchgcd/incremental.hpp"
#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::batchgcd {
namespace {

using bn::BigInt;

/// Corpus with planted structure: healthy keys, shared-prime pairs, one
/// triple star, and one duplicated modulus.
struct Corpus {
  std::vector<BigInt> moduli;
  std::vector<BigInt> primes;  // planted primes
  std::size_t healthy = 0;
};

Corpus make_corpus(std::size_t healthy_keys, std::uint64_t seed) {
  Corpus corpus;
  corpus.healthy = healthy_keys;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 8;
  for (std::size_t i = 0; i < healthy_keys; ++i) {
    corpus.moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  for (int i = 0; i < 12; ++i) {
    corpus.primes.push_back(rsa::generate_prime(rng, 64, opts));
  }
  const auto& p = corpus.primes;
  corpus.moduli.push_back(p[0] * p[1]);  // pair sharing p[0]
  corpus.moduli.push_back(p[0] * p[2]);
  corpus.moduli.push_back(p[3] * p[4]);  // star of three sharing p[3]
  corpus.moduli.push_back(p[3] * p[5]);
  corpus.moduli.push_back(p[3] * p[6]);
  corpus.moduli.push_back(p[7] * p[8]);  // duplicate pair
  corpus.moduli.push_back(p[7] * p[8]);
  return corpus;
}

// --------------------------------------------------------- ProductTree ----

TEST(ProductTree, RootIsProduct) {
  const std::vector<BigInt> inputs = {BigInt(3), BigInt(5), BigInt(7), BigInt(11)};
  const ProductTree tree(inputs);
  EXPECT_EQ(tree.root(), BigInt(3 * 5 * 7 * 11));
  EXPECT_EQ(tree.leaf_count(), 4u);
  EXPECT_EQ(tree.levels().size(), 3u);
}

TEST(ProductTree, OddCountCarriesTrailingNode) {
  const std::vector<BigInt> inputs = {BigInt(2), BigInt(3), BigInt(5)};
  const ProductTree tree(inputs);
  EXPECT_EQ(tree.root(), BigInt(30));
}

TEST(ProductTree, EmptyAndSingle) {
  const ProductTree empty(std::span<const BigInt>{});
  EXPECT_EQ(empty.root(), BigInt(1));
  EXPECT_EQ(empty.leaf_count(), 0u);

  const std::vector<BigInt> one = {BigInt(42)};
  const ProductTree single(one);
  EXPECT_EQ(single.root(), BigInt(42));
}

TEST(ProductTree, StorageMetrics) {
  std::vector<BigInt> inputs(16, BigInt(1) << 63);
  const ProductTree tree(inputs);
  EXPECT_GT(tree.total_limbs(), 16u);
  // The largest node is the root: 16 * 64 bits = 16 limbs.
  EXPECT_EQ(tree.max_node_limbs(), 16u);
}

// ------------------------------------------------------ RemainderTree ----

TEST(RemainderTree, ComputesXModSquares) {
  const std::vector<BigInt> inputs = {BigInt(3), BigInt(5), BigInt(7), BigInt(11)};
  const ProductTree tree(inputs);
  const BigInt x = BigInt(123456789);
  const auto rem = remainder_tree_squares(tree, x);
  ASSERT_EQ(rem.size(), 4u);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(rem[i], x % inputs[i].squared());
  }
}

TEST(RemainderTree, RecomputeVariantMatches) {
  Corpus corpus = make_corpus(30, 1);
  const ProductTree tree(corpus.moduli);
  const auto a = remainder_tree_squares(tree, tree.root());
  const auto b = remainder_tree_squares_recompute(corpus.moduli, tree.root());
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------- BatchGcd ----

TEST(BatchGcd, FindsPlantedSharedPrimes) {
  Corpus corpus = make_corpus(50, 2);
  const auto result = batch_gcd(corpus.moduli);
  const auto& d = result.divisors;
  const std::size_t h = corpus.healthy;

  for (std::size_t i = 0; i < h; ++i) {
    EXPECT_EQ(d[i], BigInt(1)) << "healthy key " << i << " flagged";
  }
  EXPECT_EQ(d[h + 0], corpus.primes[0]);
  EXPECT_EQ(d[h + 1], corpus.primes[0]);
  EXPECT_EQ(d[h + 2], corpus.primes[3]);
  EXPECT_EQ(d[h + 3], corpus.primes[3]);
  EXPECT_EQ(d[h + 4], corpus.primes[3]);
  // Duplicates report the whole modulus.
  EXPECT_EQ(d[h + 5], corpus.moduli[h + 5]);
  EXPECT_EQ(d[h + 6], corpus.moduli[h + 6]);

  EXPECT_EQ(result.vulnerable_indices().size(), 7u);
}

TEST(BatchGcd, EmptyAndSingleInput) {
  EXPECT_TRUE(batch_gcd({}).divisors.empty());
  const std::vector<BigInt> one = {BigInt(77)};
  const auto result = batch_gcd(one);
  ASSERT_EQ(result.divisors.size(), 1u);
  EXPECT_EQ(result.divisors[0], BigInt(1));
}

TEST(BatchGcd, NaiveMatchesTree) {
  Corpus corpus = make_corpus(40, 3);
  const auto tree = batch_gcd(corpus.moduli);
  const auto naive = naive_pairwise_gcd(corpus.moduli);
  EXPECT_EQ(tree.divisors, naive.divisors);
}

class DistributedEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DistributedEquivalence, MatchesSingleTree) {
  Corpus corpus = make_corpus(60, 4);
  const auto reference = batch_gcd(corpus.moduli);
  util::ThreadPool pool(3);
  DistributedStats stats;
  const auto distributed =
      batch_gcd_distributed(corpus.moduli, GetParam(), &pool, &stats);
  EXPECT_EQ(distributed.divisors, reference.divisors);
  EXPECT_EQ(stats.subsets, std::min(GetParam(), corpus.moduli.size()));
  EXPECT_EQ(stats.tasks, stats.subsets * stats.subsets);
}

INSTANTIATE_TEST_SUITE_P(SubsetCounts, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 1000));

TEST(Distributed, SerialAndPooledAgree) {
  Corpus corpus = make_corpus(30, 5);
  const auto serial = batch_gcd_distributed(corpus.moduli, 4, nullptr);
  util::ThreadPool pool(4);
  const auto pooled = batch_gcd_distributed(corpus.moduli, 4, &pool);
  EXPECT_EQ(serial.divisors, pooled.divisors);
}

TEST(Distributed, MaxNodeShrinksWithK) {
  Corpus corpus = make_corpus(64, 6);
  DistributedStats k1, k8;
  (void)batch_gcd_distributed(corpus.moduli, 1, nullptr, &k1);
  (void)batch_gcd_distributed(corpus.moduli, 8, nullptr, &k8);
  // The whole point of the paper's Figure 2: the biggest node shrinks ~k-fold.
  EXPECT_LT(k8.max_node_limbs * 4, k1.max_node_limbs);
}

TEST(Distributed, CrossSubsetSharingDetected) {
  // Two moduli sharing a prime, forced into different subsets (k = n).
  rng::PrngRandomSource rng(7);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  const BigInt p = rsa::generate_prime(rng, 64, opts);
  const BigInt q1 = rsa::generate_prime(rng, 64, opts);
  const BigInt q2 = rsa::generate_prime(rng, 64, opts);
  std::vector<BigInt> moduli = {p * q1, rsa::generate_key(rng, opts).pub.n,
                                p * q2};
  const auto result = batch_gcd_distributed(moduli, moduli.size(), nullptr);
  EXPECT_EQ(result.divisors[0], p);
  EXPECT_EQ(result.divisors[2], p);
  EXPECT_EQ(result.divisors[1], BigInt(1));
}

// --------------------------------------------------------- incremental ----

TEST(Incremental, MatchesFromScratchForNewBatch) {
  Corpus corpus = make_corpus(40, 9);
  // Split the corpus arbitrarily into three monthly batches.
  const std::size_t n = corpus.moduli.size();
  const std::span<const BigInt> all(corpus.moduli);
  IncrementalBatchGcd inc;
  (void)inc.add_batch(all.subspan(0, n / 3));
  (void)inc.add_batch(all.subspan(n / 3, n / 3));
  const auto last = inc.add_batch(all.subspan(2 * (n / 3)));

  // The last batch's divisors must equal the from-scratch result restricted
  // to those indices.
  const auto reference = batch_gcd(corpus.moduli);
  for (std::size_t i = 2 * (n / 3); i < n; ++i) {
    EXPECT_EQ(last.divisors[i - 2 * (n / 3)], reference.divisors[i]) << i;
  }
  EXPECT_EQ(inc.corpus().size(), n);
}

TEST(Incremental, ReportsRetroactiveHits) {
  rng::PrngRandomSource rng(10);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.sieve_primes = 128;
  const BigInt p = rsa::generate_prime(rng, 64, opts);
  const BigInt old_modulus = p * rsa::generate_prime(rng, 64, opts);

  IncrementalBatchGcd inc;
  // Month 1: the old modulus looks sound.
  const auto first = inc.add_batch(std::vector<BigInt>{
      old_modulus, rsa::generate_key(rng, opts).pub.n});
  EXPECT_EQ(first.divisors[0], BigInt(1));
  EXPECT_TRUE(first.retroactive.empty());

  // Month 2: a new modulus shares p; both directions must surface.
  const BigInt new_modulus = p * rsa::generate_prime(rng, 64, opts);
  const auto second = inc.add_batch(std::vector<BigInt>{new_modulus});
  EXPECT_EQ(second.divisors[0], p);
  ASSERT_EQ(second.retroactive.size(), 1u);
  EXPECT_EQ(second.retroactive[0].corpus_index, 0u);
  EXPECT_EQ(second.retroactive[0].divisor, p);
}

TEST(Incremental, DuplicateAcrossBatchesReportsFullModulus) {
  rng::PrngRandomSource rng(11);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.sieve_primes = 128;
  const BigInt dup = rsa::generate_key(rng, opts).pub.n;
  IncrementalBatchGcd inc;
  (void)inc.add_batch(std::vector<BigInt>{dup});
  const auto second = inc.add_batch(std::vector<BigInt>{dup});
  EXPECT_EQ(second.divisors[0], dup);
}

TEST(Incremental, EmptyBatchIsNoop) {
  IncrementalBatchGcd inc;
  const auto result = inc.add_batch({});
  EXPECT_TRUE(result.divisors.empty());
  EXPECT_TRUE(result.retroactive.empty());
  EXPECT_EQ(inc.product(), BigInt(1));
}

// ------------------------------------------------------ recover_factors ----

TEST(RecoverFactors, SplitsOnProperDivisor) {
  const BigInt n = BigInt(35), d = BigInt(5);
  const auto f = recover_factors(n, d);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->p, BigInt(5));
  EXPECT_EQ(f->q, BigInt(7));
}

TEST(RecoverFactors, RejectsTrivialAndTotal) {
  EXPECT_FALSE(recover_factors(BigInt(35), BigInt(1)).has_value());
  EXPECT_FALSE(recover_factors(BigInt(35), BigInt(35)).has_value());
  EXPECT_FALSE(recover_factors(BigInt(35), BigInt(4)).has_value());  // not a divisor
}

}  // namespace
}  // namespace weakkeys::batchgcd

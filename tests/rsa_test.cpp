#include <gtest/gtest.h>

#include <set>

#include "bn/bigint.hpp"
#include "fingerprint/openssl_fingerprint.hpp"
#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"
#include "rsa/ibm_nine_primes.hpp"
#include "rsa/keygen.hpp"
#include "rsa/pkcs1.hpp"

namespace weakkeys::rsa {
namespace {

using bn::BigInt;
using rng::PrngRandomSource;

KeygenOptions small_opts(PrimeStyle style = PrimeStyle::kOpenSsl) {
  KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.style = style;
  opts.miller_rabin_rounds = 8;
  return opts;
}

// ------------------------------------------------------------ keygen ----

TEST(Keygen, ProducesConsistentKey) {
  PrngRandomSource rng(1);
  const RsaPrivateKey key = generate_key(rng, small_opts());
  EXPECT_TRUE(key.is_consistent());
  EXPECT_EQ(key.pub.n.bit_length(), 256u);
  EXPECT_EQ(key.pub.e, BigInt(65537));
  EXPECT_NE(key.p, key.q);
}

TEST(Keygen, ExactModulusSizeAcrossSizes) {
  PrngRandomSource rng(2);
  for (std::size_t bits : {128u, 192u, 256u, 384u, 512u}) {
    KeygenOptions opts = small_opts();
    opts.modulus_bits = bits;
    const RsaPrivateKey key = generate_key(rng, opts);
    EXPECT_EQ(key.pub.n.bit_length(), bits);
    EXPECT_TRUE(key.is_consistent());
  }
}

TEST(Keygen, DeterministicGivenSameStream) {
  PrngRandomSource a(7), b(7);
  const auto ka = generate_key(a, small_opts());
  const auto kb = generate_key(b, small_opts());
  EXPECT_EQ(ka.pub.n, kb.pub.n);
  EXPECT_EQ(ka.p, kb.p);
}

TEST(Keygen, RejectsBadOptions) {
  PrngRandomSource rng(1);
  KeygenOptions opts = small_opts();
  opts.modulus_bits = 32;
  EXPECT_THROW(generate_key(rng, opts), std::invalid_argument);
  opts = small_opts();
  opts.public_exponent = 4;
  EXPECT_THROW(generate_key(rng, opts), std::invalid_argument);
}

TEST(Keygen, PrimesAreProbablePrimes) {
  PrngRandomSource rng(3);
  const RsaPrivateKey key = generate_key(rng, small_opts());
  EXPECT_TRUE(bn::is_probable_prime(key.p, rng, 20));
  EXPECT_TRUE(bn::is_probable_prime(key.q, rng, 20));
}

TEST(Keygen, PublicExponentCoprimality) {
  PrngRandomSource rng(4);
  const RsaPrivateKey key = generate_key(rng, small_opts());
  EXPECT_EQ(bn::gcd(key.pub.e, (key.p - BigInt(1)) * (key.q - BigInt(1))),
            BigInt(1));
}

TEST(Keygen, BeforePrimeHookFiresTwice) {
  PrngRandomSource rng(5);
  std::vector<int> calls;
  KeygenEvents events;
  events.before_prime = [&calls](int i) { calls.push_back(i); };
  (void)generate_key(rng, small_opts(), &events);
  ASSERT_GE(calls.size(), 2u);
  EXPECT_EQ(calls[0], 0);
  EXPECT_EQ(calls[1], 1);
}

// The load-bearing fingerprint property: OpenSSL-style primes satisfy the
// Mironov test; plain primes usually do not.
TEST(Keygen, OpensslStylePrimesSatisfyFingerprint) {
  PrngRandomSource rng(6);
  KeygenOptions opts = small_opts(PrimeStyle::kOpenSsl);
  for (int i = 0; i < 6; ++i) {
    const BigInt p = generate_prime(rng, 128, opts);
    EXPECT_TRUE(fingerprint::satisfies_openssl_fingerprint(p));
  }
}

TEST(Keygen, PlainPrimesMostlyViolateFingerprint) {
  PrngRandomSource rng(7);
  KeygenOptions opts = small_opts(PrimeStyle::kPlain);
  int satisfying = 0;
  constexpr int kTrials = 24;
  for (int i = 0; i < kTrials; ++i) {
    if (fingerprint::satisfies_openssl_fingerprint(
            generate_prime(rng, 128, opts))) {
      ++satisfying;
    }
  }
  // ~7.5% expected; 24 trials all satisfying would be astronomical.
  EXPECT_LT(satisfying, kTrials / 2);
}

// The mechanism behind the entire study: boot-state collision + mid-keygen
// stir => shared first prime, distinct second prime.
TEST(Keygen, FlawedDevicesShareExactlyOnePrime) {
  const rng::RngFlawModel flaw{.boot_entropy_bits = 4,
                               .divergence_entropy_bits = 40};
  rng::SimulatedUrandom dev_a("acme-1.0", flaw, 9, 111);
  rng::SimulatedUrandom dev_b("acme-1.0", flaw, 9, 222);
  KeygenEvents ev_a{[&dev_a](int i) { if (i == 1) dev_a.stir_divergence_event(); }};
  KeygenEvents ev_b{[&dev_b](int i) { if (i == 1) dev_b.stir_divergence_event(); }};

  const auto ka = generate_key(dev_a, small_opts(), &ev_a);
  const auto kb = generate_key(dev_b, small_opts(), &ev_b);
  EXPECT_EQ(ka.p, kb.p);
  EXPECT_NE(ka.q, kb.q);
  EXPECT_NE(ka.pub.n, kb.pub.n);
  EXPECT_EQ(bn::gcd(ka.pub.n, kb.pub.n), ka.p);
}

TEST(Keygen, NoStirFlawYieldsIdenticalKeys) {
  const rng::RngFlawModel flaw{.boot_entropy_bits = 4,
                               .divergence_entropy_bits = -1};
  rng::SimulatedUrandom dev_a("acme-1.0", flaw, 9, 111);
  rng::SimulatedUrandom dev_b("acme-1.0", flaw, 9, 222);
  KeygenEvents ev_a{[&dev_a](int i) { if (i == 1) dev_a.stir_divergence_event(); }};
  KeygenEvents ev_b{[&dev_b](int i) { if (i == 1) dev_b.stir_divergence_event(); }};
  const auto ka = generate_key(dev_a, small_opts(), &ev_a);
  const auto kb = generate_key(dev_b, small_opts(), &ev_b);
  EXPECT_EQ(ka.pub.n, kb.pub.n);  // default-certificate behaviour
}

// ------------------------------------------------------------- IBM ----

TEST(IbmNinePrimes, PoolProperties) {
  const IbmNinePrimeGenerator gen(256, 42);
  EXPECT_EQ(gen.primes().size(), 9u);
  const auto moduli = gen.possible_moduli();
  EXPECT_EQ(moduli.size(), 36u);
  const std::set<std::string> unique(
      [&] {
        std::set<std::string> s;
        for (const auto& m : moduli) s.insert(m.to_hex());
        return s;
      }());
  EXPECT_EQ(unique.size(), 36u);
}

TEST(IbmNinePrimes, DeterministicByTag) {
  const IbmNinePrimeGenerator a(256, 42), b(256, 42), c(256, 43);
  EXPECT_EQ(a.primes(), b.primes());
  EXPECT_NE(a.primes(), c.primes());
}

TEST(IbmNinePrimes, GeneratedKeysStayInClique) {
  const IbmNinePrimeGenerator gen(256, 42);
  const auto moduli = gen.possible_moduli();
  PrngRandomSource rng(8);
  for (int i = 0; i < 20; ++i) {
    const RsaPrivateKey key = gen.generate(rng);
    EXPECT_TRUE(key.is_consistent());
    EXPECT_TRUE(std::find(moduli.begin(), moduli.end(), key.pub.n) !=
                moduli.end());
  }
}

// ------------------------------------------------------------ pkcs1 ----

class Pkcs1RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Pkcs1RoundTrip, EncryptDecrypt) {
  PrngRandomSource rng(11);
  KeygenOptions opts = small_opts();
  opts.modulus_bits = GetParam();
  const RsaPrivateKey key = generate_key(rng, opts);

  const std::vector<std::uint8_t> message = {'s', 'e', 'c', 'r', 'e', 't'};
  const auto ciphertext = encrypt(key.pub, message, rng);
  EXPECT_EQ(ciphertext.size(), (GetParam() + 7) / 8);
  EXPECT_EQ(decrypt(key, ciphertext), message);
}

TEST_P(Pkcs1RoundTrip, SignVerify) {
  PrngRandomSource rng(12);
  KeygenOptions opts = small_opts();
  opts.modulus_bits = GetParam();
  const RsaPrivateKey key = generate_key(rng, opts);

  const std::vector<std::uint8_t> message = {'h', 'i'};
  const auto signature = sign(key, message);
  EXPECT_TRUE(verify(key.pub, message, signature));

  std::vector<std::uint8_t> tampered = message;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify(key.pub, tampered, signature));

  auto bad_sig = signature;
  bad_sig.back() ^= 1;
  EXPECT_FALSE(verify(key.pub, message, bad_sig));
}

INSTANTIATE_TEST_SUITE_P(KeySizes, Pkcs1RoundTrip,
                         ::testing::Values(256, 384, 512));

TEST(Pkcs1, MessageTooLongRejected) {
  PrngRandomSource rng(13);
  const RsaPrivateKey key = generate_key(rng, small_opts());  // 32-byte k
  const std::vector<std::uint8_t> long_message(30, 'x');      // needs 41
  EXPECT_THROW(encrypt(key.pub, long_message, rng), std::invalid_argument);
}

TEST(Pkcs1, RawOpsRoundTrip) {
  PrngRandomSource rng(14);
  const RsaPrivateKey key = generate_key(rng, small_opts());
  const BigInt m(123456789);
  EXPECT_EQ(private_op(key, public_op(key.pub, m)), m);
  EXPECT_EQ(public_op(key.pub, private_op(key, m)), m);
  EXPECT_THROW(public_op(key.pub, key.pub.n), std::domain_error);
  EXPECT_THROW(private_op(key, -BigInt(1)), std::domain_error);
}

// The attack the paper warns about: recovering a private key from two
// moduli sharing a prime, then decrypting traffic.
TEST(Pkcs1, FactoredKeyDecryptsTraffic) {
  const rng::RngFlawModel flaw{.boot_entropy_bits = 2,
                               .divergence_entropy_bits = 40};
  rng::SimulatedUrandom dev_a("vuln-fw", flaw, 1, 10);
  rng::SimulatedUrandom dev_b("vuln-fw", flaw, 1, 20);
  KeygenEvents ev_a{[&dev_a](int i) { if (i == 1) dev_a.stir_divergence_event(); }};
  KeygenEvents ev_b{[&dev_b](int i) { if (i == 1) dev_b.stir_divergence_event(); }};
  const auto victim = generate_key(dev_a, small_opts(), &ev_a);
  const auto other = generate_key(dev_b, small_opts(), &ev_b);

  // Attacker sees only the two public keys.
  const BigInt p = bn::gcd(victim.pub.n, other.pub.n);
  ASSERT_GT(p, BigInt(1));
  const BigInt q = victim.pub.n / p;
  const RsaPrivateKey recovered = assemble_private_key(p, q, victim.pub.e);

  PrngRandomSource rng(15);
  const std::vector<std::uint8_t> session_key = {0xde, 0xad, 0xbe, 0xef};
  const auto ciphertext = encrypt(victim.pub, session_key, rng);
  EXPECT_EQ(decrypt(recovered, ciphertext), session_key);
}

TEST(AssemblePrivateKey, RejectsNonInvertibleExponent) {
  // e divides p-1 => not invertible mod lcm.
  const BigInt p(23), q(11);
  EXPECT_THROW(assemble_private_key(p, q, BigInt(11)), std::domain_error);
}

}  // namespace
}  // namespace weakkeys::rsa

// The dirty-corpus pipeline: noise injection, the ingest/quarantine stage,
// degenerate-modulus triage, and the end-to-end invariant that results on
// the clean subset are byte-identical to a noise-free run.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/ingest.hpp"
#include "core/study.hpp"
#include "fingerprint/divisor_class.hpp"
#include "netsim/noise.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"

namespace weakkeys::core {
namespace {

rsa::RsaPrivateKey test_key(std::uint64_t seed) {
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 8;
  return rsa::generate_key(rng, opts);
}

cert::Certificate make_cert(std::uint64_t seed, std::uint64_t serial,
                            const std::string& cn) {
  cert::DistinguishedName dn;
  dn.add("CN", cn);
  return cert::make_self_signed(
      dn, {}, {util::Date(2012, 1, 1), util::Date(2022, 1, 1)},
      test_key(seed), serial);
}

netsim::HostRecord record_for(cert::Certificate c, std::uint32_t ip = 1) {
  netsim::HostRecord rec;
  rec.date = util::Date(2013, 6, 1);
  rec.source = "test";
  rec.ip = netsim::Ipv4(ip);
  rec.certificate = std::make_shared<const cert::Certificate>(std::move(c));
  return rec;
}

netsim::ScanDataset dataset_of(std::vector<netsim::HostRecord> records) {
  netsim::ScanSnapshot snap;
  snap.date = util::Date(2013, 6, 1);
  snap.source = "test";
  snap.records = std::move(records);
  netsim::ScanDataset ds;
  ds.snapshots.push_back(std::move(snap));
  return ds;
}

// ------------------------------------------------------------- ingest ----

TEST(Ingest, CleanDatasetPassesThrough) {
  auto ds = dataset_of({record_for(make_cert(1, 10, "a")),
                        record_for(make_cert(2, 11, "b"))});
  const auto result = ingest_dataset(ds);
  EXPECT_EQ(result.stats.records_seen, 2u);
  EXPECT_EQ(result.stats.records_kept, 2u);
  EXPECT_EQ(result.stats.records_quarantined, 0u);
  EXPECT_EQ(result.kept.total_host_records(), 2u);
  EXPECT_TRUE(result.degenerate_moduli.empty());
}

TEST(Ingest, QuarantinesEachSemanticReason) {
  auto good = make_cert(3, 20, "good");

  auto zero = good;
  zero.key.n = bn::BigInt(0);
  auto tiny = good;
  tiny.key.n = bn::BigInt(12345);  // odd, far below 128 bits
  auto even = good;
  even.key.n = good.key.n - bn::BigInt(1);
  auto bad_e = good;
  bad_e.key.e = bn::BigInt(1);
  auto inverted = good;
  inverted.validity.not_after = inverted.validity.not_before.add_days(-30);
  // Same serial as `good` under a different subject: junk echoing a real key.
  auto dup = make_cert(4, 20, "scan-junk");

  auto ds = dataset_of({record_for(good), record_for(zero), record_for(tiny),
                        record_for(even), record_for(bad_e),
                        record_for(inverted), record_for(dup)});
  const auto result = ingest_dataset(ds);

  EXPECT_EQ(result.stats.records_kept, 1u);
  EXPECT_EQ(result.stats.records_quarantined, 6u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kZeroModulus), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kTinyModulus), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kEvenModulus), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kBadExponent), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kInvertedValidity), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kDuplicateSerial), 1u);

  // The zero, tiny, and even moduli reroute to the divisor-class triage.
  EXPECT_EQ(result.stats.degenerate_moduli, 3u);
  ASSERT_EQ(result.degenerate_moduli.size(), 3u);

  const std::string summary = result.stats.summary();
  EXPECT_NE(summary.find("even-modulus=1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("duplicate-serial=1"), std::string::npos) << summary;
}

TEST(Ingest, SameSerialSameSubjectIsKept) {
  // Per-observation variants (bit flips, MITM substitution) reuse the serial
  // under the victim's own subject and must not trip the duplicate check.
  auto variant = make_cert(5, 30, "victim");
  variant.key.n = variant.key.n + bn::BigInt(2);  // still odd, large
  auto ds =
      dataset_of({record_for(make_cert(5, 30, "victim")), record_for(variant)});
  const auto result = ingest_dataset(ds);
  EXPECT_EQ(result.stats.records_kept, 2u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kDuplicateSerial), 0u);
}

TEST(Ingest, MissingCertificateQuarantined) {
  netsim::HostRecord empty;
  empty.date = util::Date(2013, 6, 1);
  empty.ip = netsim::Ipv4(9);
  auto ds = dataset_of({std::move(empty)});
  const auto result = ingest_dataset(ds);
  EXPECT_EQ(result.stats.records_kept, 0u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kMissingCertificate),
            1u);
}

TEST(Ingest, RawBytesRecoveredWhenValid) {
  const auto original = make_cert(6, 40, "raw-host");
  netsim::HostRecord raw;
  raw.date = util::Date(2013, 6, 1);
  raw.ip = netsim::Ipv4(10);
  raw.raw_der = original.encode();
  auto ds = dataset_of({std::move(raw)});

  const auto result = ingest_dataset(ds);
  EXPECT_EQ(result.stats.raw_records, 1u);
  EXPECT_EQ(result.stats.raw_recovered, 1u);
  EXPECT_EQ(result.stats.records_kept, 1u);
  const auto& rec = result.kept.snapshots.at(0).records.at(0);
  ASSERT_TRUE(rec.has_cert());
  EXPECT_EQ(rec.cert(), original);
  EXPECT_TRUE(rec.raw_der.empty());
}

TEST(Ingest, RawGarbageQuarantinedByParseReason) {
  const auto bytes = make_cert(7, 50, "victim").encode();

  netsim::HostRecord truncated;
  truncated.raw_der = {bytes.begin(), bytes.begin() + 3};
  netsim::HostRecord wrong_tag;
  wrong_tag.raw_der = bytes;
  wrong_tag.raw_der[0] = 0x77;
  auto ds = dataset_of({std::move(truncated), std::move(wrong_tag)});

  const auto result = ingest_dataset(ds);
  EXPECT_EQ(result.stats.records_kept, 0u);
  EXPECT_EQ(result.stats.raw_records, 2u);
  EXPECT_EQ(result.stats.raw_recovered, 0u);
  EXPECT_EQ(
      result.stats.quarantined(QuarantineReason::kParseTruncatedHeader), 1u);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kParseBadTag), 1u);
  EXPECT_EQ(result.stats.parse_failures(), 2u);
}

// ------------------------------------------------------------- triage ----

TEST(Triage, DegenerateModuliLandInPaperBuckets) {
  using fingerprint::DivisorClass;
  using fingerprint::triage_degenerate_modulus;
  // Zero/one: pure corruption, the bit-error bucket.
  EXPECT_EQ(triage_degenerate_modulus(bn::BigInt(0)),
            DivisorClass::kSmoothBitError);
  EXPECT_EQ(triage_degenerate_modulus(bn::BigInt(1)),
            DivisorClass::kSmoothBitError);
  // Even or small-prime-divisible: smooth part nontrivial.
  EXPECT_EQ(triage_degenerate_modulus(bn::BigInt(1) << 200),
            DivisorClass::kSmoothBitError);
  EXPECT_EQ(triage_degenerate_modulus((bn::BigInt(1) << 200) + bn::BigInt(5)),
            DivisorClass::kSmoothBitError);  // divisible by 5
  // A large prime with no small factors (2^127 - 1 is prime): kOther.
  EXPECT_EQ(triage_degenerate_modulus((bn::BigInt(1) << 127) - bn::BigInt(1)),
            DivisorClass::kOther);
}

// -------------------------------------------------------------- noise ----

netsim::NoiseConfig busy_noise() {
  netsim::NoiseConfig noise;
  noise.truncated_rate = 0.05;
  noise.bitflip_rate = 0.05;
  noise.zero_modulus_rate = 0.03;
  noise.even_modulus_rate = 0.03;
  noise.tiny_modulus_rate = 0.03;
  noise.bad_exponent_rate = 0.03;
  noise.inverted_validity_rate = 0.03;
  noise.duplicate_serial_rate = 0.03;
  return noise;
}

netsim::ScanDataset sample_dataset() {
  std::vector<netsim::HostRecord> records;
  for (std::uint64_t i = 0; i < 40; ++i) {
    records.push_back(record_for(make_cert(100 + i, 100 + i, "host"),
                                 static_cast<std::uint32_t>(i)));
  }
  return dataset_of(std::move(records));
}

TEST(Noise, DeterministicFromSeed) {
  auto a = sample_dataset();
  auto b = sample_dataset();
  const auto noise = busy_noise();
  const auto sa = netsim::apply_noise(a, noise);
  const auto sb = netsim::apply_noise(b, noise);

  EXPECT_GT(sa.total(), 0u);
  EXPECT_EQ(sa.total(), sb.total());
  ASSERT_EQ(a.snapshots[0].records.size(), b.snapshots[0].records.size());
  for (std::size_t i = 0; i < a.snapshots[0].records.size(); ++i) {
    const auto& ra = a.snapshots[0].records[i];
    const auto& rb = b.snapshots[0].records[i];
    EXPECT_EQ(ra.ip, rb.ip);
    EXPECT_EQ(ra.raw_der, rb.raw_der);
    ASSERT_EQ(ra.has_cert(), rb.has_cert());
    if (ra.has_cert()) {
      EXPECT_EQ(ra.cert(), rb.cert());
    }
  }
}

TEST(Noise, AppendsJunkWithoutTouchingCleanRecords) {
  const auto before = sample_dataset();
  auto after = sample_dataset();
  const auto summary = netsim::apply_noise(after, busy_noise());

  const auto& orig = before.snapshots[0].records;
  const auto& noisy = after.snapshots[0].records;
  ASSERT_EQ(noisy.size(), orig.size() + summary.total());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_EQ(noisy[i].ip, orig[i].ip);
    EXPECT_EQ(noisy[i].cert(), orig[i].cert());
  }
  std::size_t raw = 0;
  for (std::size_t i = orig.size(); i < noisy.size(); ++i) {
    raw += noisy[i].raw_der.empty() ? 0 : 1;
  }
  EXPECT_EQ(raw, summary.raw_records());
}

TEST(Noise, FingerprintSeparatesConfigs) {
  netsim::NoiseConfig off;
  EXPECT_FALSE(off.any());
  EXPECT_EQ(off.fingerprint(), 0u);

  const auto on = busy_noise();
  ASSERT_TRUE(on.any());
  EXPECT_NE(on.fingerprint(), 0u);

  auto reseeded = on;
  reseeded.seed ^= 1;
  EXPECT_NE(on.fingerprint(), reseeded.fingerprint());
  auto rerated = on;
  rerated.bitflip_rate += 0.01;
  EXPECT_NE(on.fingerprint(), rerated.fingerprint());
}

TEST(Noise, InjectedCorruptionIsFullyAccountedFor) {
  auto ds = sample_dataset();
  const auto summary = netsim::apply_noise(ds, busy_noise());
  ASSERT_GT(summary.total(), 0u);
  const auto result = ingest_dataset(ds);

  // Every decoded-object injection maps to exactly its quarantine reason.
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kZeroModulus),
            summary.zero_modulus);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kTinyModulus),
            summary.tiny_modulus);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kBadExponent),
            summary.bad_exponent);
  EXPECT_EQ(result.stats.quarantined(QuarantineReason::kInvertedValidity),
            summary.inverted_validity);
  // Bit flips can land anywhere — a flipped subject byte yields a
  // same-serial/different-subject record, a flipped modulus bit an even
  // one — so these buckets are lower bounds, not equalities.
  EXPECT_GE(result.stats.quarantined(QuarantineReason::kDuplicateSerial),
            summary.duplicate_serial);
  EXPECT_GE(result.stats.quarantined(QuarantineReason::kEvenModulus),
            summary.even_modulus);

  // Wire-damage records either fail to parse, are quarantined semantically,
  // or decode cleanly and are recovered — nothing vanishes.
  EXPECT_EQ(result.stats.raw_records, summary.raw_records());
  EXPECT_EQ(result.stats.records_seen,
            sample_dataset().total_host_records() + summary.total());
  EXPECT_EQ(result.stats.records_quarantined + result.stats.records_kept,
            result.stats.records_seen);
  EXPECT_EQ(result.stats.records_quarantined + result.stats.raw_recovered,
            summary.total());
}

// ----------------------------------------------- dirty-corpus pipeline ----

TEST(StudyDirtyCorpus, NoisyRunMatchesCleanRunOnCleanSubset) {
  StudyConfig config;
  config.sim.seed = 991;
  config.sim.scale = 0.008;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 2;
  config.threads = 2;
  config.cache_path = "";

  Study clean(config);
  clean.run();
  EXPECT_EQ(clean.ingest_stats().records_quarantined, 0u);
  EXPECT_EQ(clean.ingest_stats().records_kept,
            clean.ingest_stats().records_seen);
  EXPECT_EQ(clean.noise_summary().total(), 0u);

  auto noisy_config = config;
  noisy_config.noise.truncated_rate = 0.01;
  noisy_config.noise.bitflip_rate = 0.01;
  noisy_config.noise.zero_modulus_rate = 0.005;
  noisy_config.noise.even_modulus_rate = 0.005;
  noisy_config.noise.tiny_modulus_rate = 0.005;
  noisy_config.noise.bad_exponent_rate = 0.005;
  noisy_config.noise.inverted_validity_rate = 0.005;
  noisy_config.noise.duplicate_serial_rate = 0.005;

  Study noisy(noisy_config);
  noisy.run();  // must complete without throwing on the dirty corpus

  const auto& summary = noisy.noise_summary();
  const auto& stats = noisy.ingest_stats();
  ASSERT_GT(summary.total(), 0u);
  EXPECT_GT(stats.records_quarantined, 0u);
  // Every injected corruption is accounted for: quarantined or recovered.
  EXPECT_EQ(stats.records_quarantined + stats.raw_recovered, summary.total());
  EXPECT_EQ(stats.quarantined(QuarantineReason::kZeroModulus),
            summary.zero_modulus);
  // Lower bound: bit flips in the subject bytes also land here.
  EXPECT_GE(stats.quarantined(QuarantineReason::kDuplicateSerial),
            summary.duplicate_serial);
  EXPECT_GT(stats.degenerate_moduli, 0u);

  // Degenerate moduli were triaged into the bit-error/other buckets.
  EXPECT_GE(noisy.factor_stats().bit_errors + noisy.factor_stats().other,
            clean.factor_stats().bit_errors + clean.factor_stats().other +
                stats.degenerate_moduli);

  // The headline result — the vulnerable set — is byte-identical on the
  // clean subset: junk never adds or removes a weak key.
  std::set<std::string> clean_vuln;
  for (const auto& f : clean.factored()) clean_vuln.insert(f.n.to_hex());
  std::set<std::string> noisy_vuln;
  for (const auto& f : noisy.factored()) noisy_vuln.insert(f.n.to_hex());
  EXPECT_EQ(clean_vuln, noisy_vuln);
  EXPECT_EQ(clean.vulnerable().size(), noisy.vulnerable().size());
  EXPECT_EQ(clean.factor_stats().shared_prime,
            noisy.factor_stats().shared_prime);
}

}  // namespace
}  // namespace weakkeys::core

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace weakkeys::crypto {
namespace {

std::string hex(const std::string& message) {
  return digest_hex(Sha256::hash(message));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyMessage) {
  EXPECT_EQ(hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string message =
      "The quick brown fox jumps over the lazy dog, repeatedly and at length, "
      "to exercise buffering across block boundaries. 0123456789abcdef";
  // Split at every possible point: buffering must not matter.
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha256 h;
    h.update(message.substr(0, split));
    h.update(message.substr(split));
    EXPECT_EQ(digest_hex(h.finish()), hex(message)) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes are the padding-logic corner cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string m(len, 'x');
    Sha256 h;
    h.update(m);
    EXPECT_EQ(digest_hex(h.finish()), hex(m)) << "len=" << len;
  }
}

TEST(Sha256, ObjectReusableAfterFinish) {
  Sha256 h;
  h.update(std::string("first"));
  (void)h.finish();
  h.update(std::string("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(hex("abc"), hex("abd"));
  EXPECT_NE(hex("abc"), hex("abc "));
}

}  // namespace
}  // namespace weakkeys::crypto

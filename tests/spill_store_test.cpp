// Out-of-core spill store: format corruption table, heal/rebuild, the
// degradation ladder, resume from published levels, and RAM/spill
// equivalence of every batch-GCD result.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/distributed.hpp"
#include "batchgcd/product_tree.hpp"
#include "batchgcd/remainder_tree.hpp"
#include "batchgcd/spill_store.hpp"
#include "obs/metrics.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/spill_file.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::batchgcd {
namespace {

using bn::BigInt;
using util::SpillFileStatus;
using util::StorageError;
using util::StorageErrorKind;

std::vector<BigInt> make_moduli(std::size_t healthy, std::uint64_t seed) {
  std::vector<BigInt> moduli;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 8;
  for (std::size_t i = 0; i < healthy; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  std::vector<BigInt> p;
  for (int i = 0; i < 6; ++i) p.push_back(rsa::generate_prime(rng, 64, opts));
  moduli.push_back(p[0] * p[1]);  // pair sharing p[0]
  moduli.push_back(p[0] * p[2]);
  moduli.push_back(p[3] * p[4]);  // second pair
  moduli.push_back(p[3] * p[5]);
  return moduli;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> bytes;
  if (!f) return bytes;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  if (!b.empty()) {
    ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  }
  std::fclose(f);
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f) std::fclose(f);
  return f != nullptr;
}

/// Per-test scratch dir; removes every spill artifact it could have left.
class SpillDir {
 public:
  explicit SpillDir(const std::string& base)
      : dir_("spill_test_" + base + ".d") {}
  ~SpillDir() {
    for (std::size_t k = 0; k < 64; ++k) {
      for (const char* b : {"tree", "study"}) {
        for (int s = -1; s < 8; ++s) {
          std::string base = b;
          if (s >= 0) base += ".s" + std::to_string(s);
          const std::string p =
              dir_ + "/" + base + ".L" + std::to_string(k) + ".wkl";
          std::remove(p.c_str());
          std::remove((p + ".tmp").c_str());
        }
      }
    }
    ::rmdir(dir_.c_str());
  }
  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

std::string test_name() {
  return ::testing::UnitTest::GetInstance()->current_test_info()->name();
}

// ----------------------------------------------------------- spill file ----

TEST(SpillFile, RoundTripsRecords) {
  SpillDir dir(test_name());
  ::mkdir(dir.path().c_str(), 0777);
  const std::string path = dir.path() + "/tree.L0.wkl";
  const std::vector<std::vector<std::uint8_t>> records = {
      {1, 2, 3}, {}, {0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88}};
  {
    util::SpillFileWriter w(path, 77, 3);
    for (const auto& r : records) w.add_record(r.data(), r.size());
    const std::uint64_t total = w.finish();
    EXPECT_EQ(total, util::kSpillHeaderSize + (4 + 3) + (4 + 0) + (4 + 8) +
                         util::kSpillFooterSize);
  }
  util::SpillFileHeader header;
  std::vector<std::vector<std::uint8_t>> got;
  EXPECT_EQ(util::read_spill_file(path, 77, &header, &got),
            SpillFileStatus::kOk);
  EXPECT_EQ(header.generation, 77u);
  EXPECT_EQ(header.level_index, 3u);
  EXPECT_EQ(header.record_count, records.size());
  EXPECT_EQ(got, records);
  EXPECT_EQ(util::probe_spill_file(path, 77, &header), SpillFileStatus::kOk);
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

TEST(SpillFile, CorruptionTableMapsToDistinctStatuses) {
  SpillDir dir(test_name());
  ::mkdir(dir.path().c_str(), 0777);
  const std::string path = dir.path() + "/tree.L0.wkl";
  {
    util::SpillFileWriter w(path, 9, 0);
    const std::uint8_t a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    const std::uint8_t b[8] = {9, 10, 11, 12, 13, 14, 15, 16};
    w.add_record(a, sizeof a);
    w.add_record(b, sizeof b);
    w.finish();
  }
  const std::vector<std::uint8_t> valid = read_file(path);
  ASSERT_EQ(valid.size(),
            util::kSpillHeaderSize + 2 * (4 + 8) + util::kSpillFooterSize);

  struct Case {
    const char* name;
    std::uint64_t expect_generation;
    /// Mutates a copy of the valid bytes; empty result = delete the file.
    std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)> mutate;
    SpillFileStatus want;
  };
  const std::vector<Case> table = {
      {"missing", 9, [](std::vector<std::uint8_t>) {
         return std::vector<std::uint8_t>{0xde};  // sentinel: delete instead
       },
       SpillFileStatus::kMissing},
      {"empty", 9,
       [](std::vector<std::uint8_t>) { return std::vector<std::uint8_t>{}; },
       SpillFileStatus::kEmpty},
      {"truncated-header", 9,
       [](std::vector<std::uint8_t> b) {
         b.resize(util::kSpillHeaderSize - 1);
         return b;
       },
       SpillFileStatus::kTruncatedHeader},
      {"bad-magic", 9,
       [](std::vector<std::uint8_t> b) {
         b[0] ^= 0xff;
         return b;
       },
       SpillFileStatus::kBadMagic},
      {"bad-version", 9,
       [](std::vector<std::uint8_t> b) {
         b[4] = 0x7f;  // version != kSpillVersion; header CRC checked later
         return b;
       },
       SpillFileStatus::kBadVersion},
      {"bad-header-crc", 9,
       [](std::vector<std::uint8_t> b) {
         b[8] ^= 0x01;  // generation byte: header CRC no longer matches
         return b;
       },
       SpillFileStatus::kBadHeaderCrc},
      {"stale-generation", 10,
       [](std::vector<std::uint8_t> b) { return b; },
       SpillFileStatus::kStaleGeneration},
      {"truncated-payload", 9,
       [](std::vector<std::uint8_t> b) {
         b.resize(b.size() - 8);
         return b;
       },
       SpillFileStatus::kTruncatedPayload},
      {"bad-record-length", 9,
       [](std::vector<std::uint8_t> b) {
         // First record's u32 length points past the payload.
         b[util::kSpillHeaderSize + 3] = 0x7f;
         return b;
       },
       SpillFileStatus::kBadRecord},
      {"bad-payload-crc", 9,
       [](std::vector<std::uint8_t> b) {
         b[b.size() - util::kSpillFooterSize - 1] ^= 0x01;  // last data byte
         return b;
       },
       SpillFileStatus::kBadPayloadCrc},
  };

  for (const auto& c : table) {
    SCOPED_TRACE(c.name);
    if (std::string(c.name) == "missing") {
      std::remove(path.c_str());
    } else {
      write_file(path, c.mutate(valid));
    }
    util::SpillFileHeader header;
    std::vector<std::vector<std::uint8_t>> records;
    EXPECT_EQ(util::read_spill_file(path, c.expect_generation, &header,
                                    &records),
              c.want);
  }

  // The probe validates headers only: payload corruption passes the probe
  // (resume trusts the header; the later full read heals), while header
  // corruption and stale generations do not.
  util::SpillFileHeader header;
  std::vector<std::uint8_t> flipped = valid;
  flipped[flipped.size() - util::kSpillFooterSize - 1] ^= 0x01;
  write_file(path, flipped);
  EXPECT_EQ(util::probe_spill_file(path, 9, &header), SpillFileStatus::kOk);
  EXPECT_EQ(util::probe_spill_file(path, 10, &header),
            SpillFileStatus::kStaleGeneration);
  std::vector<std::uint8_t> bad_header = valid;
  bad_header[8] ^= 0x01;
  write_file(path, bad_header);
  EXPECT_EQ(util::probe_spill_file(path, 9, &header),
            SpillFileStatus::kBadHeaderCrc);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- spill store ----

TreeStorage make_storage(const SpillDir& dir, obs::MetricsRegistry* registry) {
  TreeStorage storage;
  storage.spill_dir = dir.path();
  storage.spill_threshold_bytes = 0;  // always spill
  storage.registry = registry;
  return storage;
}

TEST(SpillStore, SpilledTreeMatchesRamTree) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(40, 1);

  const ProductTree ram(moduli);
  obs::MetricsRegistry registry;
  const ProductTree spilled(moduli, make_storage(dir, &registry));
  EXPECT_FALSE(ram.spilled());
  EXPECT_TRUE(spilled.spilled());
  EXPECT_EQ(ram.root(), spilled.root());
  EXPECT_EQ(ram.leaf_count(), spilled.leaf_count());
  EXPECT_EQ(ram.level_count(), spilled.level_count());
  for (std::size_t k = 0; k < ram.level_count(); ++k) {
    EXPECT_EQ(ram.level_stats()[k].nodes, spilled.level_stats()[k].nodes);
    EXPECT_EQ(ram.level_stats()[k].bytes, spilled.level_stats()[k].bytes);
  }

  // The remainder walk over the spilled tree is value-identical.
  const auto rem_ram = remainder_tree_squares(ram, ram.root());
  const auto rem_spill = remainder_tree_squares(spilled, spilled.root());
  EXPECT_EQ(rem_ram, rem_spill);

  // A spilled tree never exposes levels() — that is the RAM backend's API.
  EXPECT_THROW((void)spilled.levels(), std::logic_error);

  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("spill.bytes_written"), 0u);
  EXPECT_GT(snap.counter("spill.bytes_read"), 0u);
  EXPECT_EQ(snap.counter("spill.levels_spilled"), spilled.level_count());
  EXPECT_EQ(snap.counter("spill.verify_failures"), 0u);
}

TEST(SpillStore, BatchGcdOutOfCoreIsByteIdentical) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(40, 2);
  const BatchGcdResult ram = batch_gcd(moduli);
  obs::MetricsRegistry registry;
  const TreeStorage storage = make_storage(dir, &registry);
  const BatchGcdResult spilled = batch_gcd(moduli, nullptr, &storage);
  EXPECT_EQ(ram.divisors, spilled.divisors);
  EXPECT_EQ(ram.vulnerable_indices(), spilled.vulnerable_indices());
  // Graceful completion removes the level files: nothing left to leak.
  EXPECT_FALSE(file_exists(dir.path() + "/tree.L0.wkl"));
}

TEST(SpillStore, DistributedWithStorageIsByteIdentical) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(30, 3);
  const BatchGcdResult ram = batch_gcd_distributed(moduli, 3);
  obs::MetricsRegistry registry;
  const TreeStorage storage = make_storage(dir, &registry);
  util::ThreadPool pool(4);
  const BatchGcdResult spilled = batch_gcd_distributed(
      moduli, 3, &pool, nullptr, nullptr, nullptr, &storage);
  EXPECT_EQ(ram.divisors, spilled.divisors);
  // Each subset tree spilled under its own base.
  EXPECT_GE(registry.snapshot().counter("spill.levels_spilled"), 3u);
}

TEST(SpillStore, ResidentWindowStaysBounded) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(60, 4);
  obs::MetricsRegistry registry;
  const ProductTree tree(moduli, make_storage(dir, &registry));
  (void)remainder_tree_squares(tree, tree.root());
  const auto snap = registry.snapshot();
  const auto peak = snap.gauges.find("spill.resident_bytes_peak");
  ASSERT_NE(peak, snap.gauges.end());
  std::uint64_t total_bytes = 0;
  for (const auto& s : tree.level_stats()) total_bytes += s.bytes;
  // Bounded residency: the peak window is well under the whole tree (the
  // whole point of spilling). Two levels resident -> less than half.
  EXPECT_GT(peak->second, 0);
  EXPECT_LT(static_cast<std::uint64_t>(peak->second), total_bytes / 2);
  // The walk released every level it loaded: nothing stays resident.
  EXPECT_EQ(tree.store().resident_bytes(), 0u);
}

TEST(SpillStore, HealsCorruptMidLevelFromChildren) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(40, 5);
  obs::MetricsRegistry registry;
  ProductTree tree(moduli, make_storage(dir, &registry));
  const ProductTree ram(moduli);
  ASSERT_GT(tree.level_count(), 3u);

  // Flip one payload byte of level 2 on disk, then force a fresh read.
  const std::string level2 = dir.path() + "/tree.L2.wkl";
  std::vector<std::uint8_t> bytes = read_file(level2);
  bytes[bytes.size() - util::kSpillFooterSize - 1] ^= 0x01;
  write_file(level2, bytes);

  LevelStore& store = tree.store();
  store.release_level(2);  // make sure it is not resident
  const LevelHandle healed = store.load_level(2);
  EXPECT_EQ(*healed, ram.levels()[2]);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("spill.verify_failures"), 1u);
  EXPECT_EQ(snap.counter("spill.heals"), 1u);
  EXPECT_EQ(snap.counter("spill.rebuilds"), 0u);

  // The heal rewrote the level: the next read is clean.
  util::SpillFileHeader header;
  std::vector<std::vector<std::uint8_t>> records;
  EXPECT_EQ(util::read_spill_file(level2, fingerprint_moduli(moduli), &header,
                                  &records),
            SpillFileStatus::kOk);
}

TEST(SpillStore, RebuildsCorruptLeafLevelFromModuli) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(40, 6);
  obs::MetricsRegistry registry;
  ProductTree tree(moduli, make_storage(dir, &registry));

  const std::string level0 = dir.path() + "/tree.L0.wkl";
  std::vector<std::uint8_t> bytes = read_file(level0);
  bytes[util::kSpillHeaderSize + 4] ^= 0xff;
  write_file(level0, bytes);

  LevelStore& store = tree.store();
  store.release_level(0);
  const LevelHandle rebuilt = store.load_level(0);
  ASSERT_EQ(rebuilt->size(), moduli.size());
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    EXPECT_EQ((*rebuilt)[i], moduli[i]);
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("spill.verify_failures"), 1u);
  EXPECT_EQ(snap.counter("spill.heals"), 0u);
  EXPECT_EQ(snap.counter("spill.rebuilds"), 1u);
}

TEST(SpillStore, EveryLevelBitFlippedStillHealsToIdenticalResult) {
  // Post-publish bit flip on *every* spill write: every load verify-fails
  // and the store must heal recursively down to a leaf rebuild. The
  // invariant and the output both survive.
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(30, 7);
  const BatchGcdResult ram = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 42;
  faults.storage_bit_flip_probability = 1.0;
  util::FaultInjector injector(faults);
  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.injector = &injector;

  const BatchGcdResult spilled = batch_gcd(moduli, nullptr, &storage);
  EXPECT_EQ(ram.divisors, spilled.divisors);
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("spill.verify_failures"), 0u);
  EXPECT_EQ(snap.counter("spill.verify_failures"),
            snap.counter("spill.heals") + snap.counter("spill.rebuilds"));
}

TEST(SpillStore, ShortWritesWalkTheLadderAndResultsMatch) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(30, 8);
  const BatchGcdResult ram = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 7;
  faults.storage_short_write_probability = 0.5;
  faults.storage_fsync_fail_probability = 0.2;
  util::FaultInjector injector(faults);
  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.injector = &injector;

  const BatchGcdResult spilled = batch_gcd(moduli, nullptr, &storage);
  EXPECT_EQ(ram.divisors, spilled.divisors);
  const auto snap = registry.snapshot();
  // The schedule is dense enough that the ladder engaged somewhere.
  EXPECT_GT(snap.counter("spill.write_retries") +
                snap.counter("spill.degraded_levels"),
            0u);
  EXPECT_EQ(snap.counter("spill.verify_failures"),
            snap.counter("spill.heals") + snap.counter("spill.rebuilds"));
}

TEST(SpillStore, EnospcDegradesToRamFallbackWithIdenticalResult) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(30, 9);
  const BatchGcdResult ram = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 1;
  faults.storage_enospc_probability = 1.0;  // every write fails: disk full
  util::FaultInjector injector(faults);
  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.injector = &injector;

  const BatchGcdResult spilled = batch_gcd(moduli, nullptr, &storage);
  EXPECT_EQ(ram.divisors, spilled.divisors);
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("spill.enospc"), 0u);
  EXPECT_GT(snap.counter("spill.window_shrinks"), 0u);
  EXPECT_GT(snap.counter("spill.degraded_levels"), 0u);
}

TEST(SpillStore, ExhaustedFallbackBudgetCancelsCleanly) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(30, 10);

  util::FaultConfig faults;
  faults.seed = 1;
  faults.storage_enospc_probability = 1.0;
  util::FaultInjector injector(faults);
  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.injector = &injector;
  storage.ram_fallback_budget_bytes = 1;  // nothing fits: the ladder ends

  try {
    (void)batch_gcd(moduli, nullptr, &storage);
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kExhausted);
  }
}

TEST(SpillStore, ResumesFromPublishedLevels) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(40, 11);
  const ProductTree ram(moduli);

  obs::MetricsRegistry first_registry;
  TreeStorage storage = make_storage(dir, &first_registry);
  storage.remove_on_destroy = false;  // simulate SIGKILL: files survive
  std::size_t levels = 0;
  {
    const ProductTree first(moduli, storage);
    levels = first.level_count();
    ASSERT_GT(levels, 0u);
  }
  ASSERT_TRUE(file_exists(dir.path() + "/tree.L0.wkl"));

  // Second run over the same dir/corpus resumes instead of rebuilding.
  obs::MetricsRegistry second_registry;
  TreeStorage resumed_storage = make_storage(dir, &second_registry);
  const ProductTree resumed(moduli, resumed_storage);
  EXPECT_EQ(resumed.root(), ram.root());
  const auto snap = second_registry.snapshot();
  EXPECT_EQ(snap.counter("spill.levels_resumed"), levels);
  EXPECT_EQ(snap.counter("spill.levels_spilled"), 0u);
  EXPECT_EQ(remainder_tree_squares(resumed, resumed.root()),
            remainder_tree_squares(ram, ram.root()));
}

TEST(SpillStore, StaleGenerationLevelsAreNotResumed) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(20, 12);
  const std::vector<BigInt> other = make_moduli(20, 13);

  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.remove_on_destroy = false;
  { const ProductTree first(other, storage); }

  // Same dir, different corpus: the stale files must not be trusted.
  obs::MetricsRegistry second_registry;
  TreeStorage fresh = make_storage(dir, &second_registry);
  const ProductTree tree(moduli, fresh);
  EXPECT_EQ(tree.root(), ProductTree(moduli).root());
  EXPECT_EQ(second_registry.snapshot().counter("spill.levels_resumed"), 0u);
}

TEST(SpillStore, SweepsOrphanedTmpFilesOnConstruction) {
  SpillDir dir(test_name());
  ::mkdir(dir.path().c_str(), 0777);
  const std::string orphan = dir.path() + "/tree.L1.wkl.tmp";
  write_file(orphan, {0xde, 0xad});
  ASSERT_TRUE(file_exists(orphan));

  const std::vector<BigInt> moduli = make_moduli(20, 14);
  obs::MetricsRegistry registry;
  const ProductTree tree(moduli, make_storage(dir, &registry));
  EXPECT_FALSE(file_exists(orphan));
}

TEST(SpillStore, LeafCorruptionWithoutRebuilderIsExhausted) {
  SpillDir dir(test_name());
  Level leaves;
  for (int i = 0; i < 8; ++i) leaves.push_back(BigInt(101 + 2 * i));

  TreeStorage storage;
  storage.spill_dir = dir.path();
  storage.generation = 99;
  SpillLevelStore store(storage, nullptr);  // no rebuild source
  store.append_level(Level(leaves));

  const std::string level0 = store.level_path(0);
  std::vector<std::uint8_t> bytes = read_file(level0);
  bytes[bytes.size() - util::kSpillFooterSize - 1] ^= 0x01;
  write_file(level0, bytes);
  store.release_level(0);
  try {
    (void)store.load_level(0);
    FAIL() << "expected StorageError";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.kind(), StorageErrorKind::kExhausted);
  }
}

TEST(SpillStore, ThresholdKeepsSmallTreesInRam) {
  SpillDir dir(test_name());
  const std::vector<BigInt> moduli = make_moduli(10, 15);
  obs::MetricsRegistry registry;
  TreeStorage storage = make_storage(dir, &registry);
  storage.spill_threshold_bytes = 1ull << 40;  // far above this corpus
  const ProductTree tree(moduli, storage);
  EXPECT_FALSE(tree.spilled());
  EXPECT_EQ(registry.snapshot().counter("spill.levels_spilled"), 0u);
  EXPECT_EQ(tree.root(), ProductTree(moduli).root());
}

}  // namespace
}  // namespace weakkeys::batchgcd

#include <gtest/gtest.h>

#include <set>

#include "bn/bigint.hpp"
#include "rng/prng_source.hpp"
#include "util/prng.hpp"

namespace weakkeys::bn {
namespace {

using rng::PrngRandomSource;

BigInt big(const std::string& dec) { return BigInt::from_decimal(dec); }

BigInt random_value(util::Xoshiro256& rng, std::size_t max_bits) {
  PrngRandomSource src(rng());
  return random_bits(src, 1 + rng.below(max_bits));
}

// ------------------------------------------------------------ basics ----

TEST(BigInt, DefaultIsZero) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigInt, NativeConstruction) {
  EXPECT_EQ(BigInt(std::uint64_t{12345}).to_decimal(), "12345");
  EXPECT_EQ(BigInt(std::int64_t{-7}).to_decimal(), "-7");
  EXPECT_EQ(BigInt(std::int64_t{INT64_MIN}).to_decimal(),
            "-9223372036854775808");
  EXPECT_EQ(BigInt(~std::uint64_t{0}).to_decimal(), "18446744073709551615");
}

TEST(BigInt, ParityAndSign) {
  EXPECT_TRUE(BigInt(4).is_even());
  EXPECT_TRUE(BigInt(5).is_odd());
  EXPECT_TRUE(BigInt(0).is_even());
  EXPECT_TRUE(BigInt(-3).is_odd());
  EXPECT_TRUE(BigInt(-3).is_negative());
  EXPECT_EQ((-BigInt(3)).sign(), -1);
  EXPECT_EQ(BigInt(0), -BigInt(0));
}

TEST(BigInt, ToUint64Bounds) {
  EXPECT_EQ(BigInt(std::uint64_t{77}).to_uint64(), 77u);
  EXPECT_THROW((void)BigInt(-1).to_uint64(), std::overflow_error);
  EXPECT_THROW((void)(BigInt(1) << 64).to_uint64(), std::overflow_error);
}

TEST(BigInt, DecimalRoundTrip) {
  const std::string n =
      "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(big(n).to_decimal(), n);
  EXPECT_EQ(big("-" + n).to_decimal(), "-" + n);
}

TEST(BigInt, HexRoundTrip) {
  const std::string h = "deadbeefcafef00d0123456789abcdef00000001";
  EXPECT_EQ(BigInt::from_hex(h).to_hex(), h);
  EXPECT_EQ(BigInt::from_hex("0000ff").to_hex(), "ff");
  EXPECT_EQ(BigInt::from_hex("-ff").to_decimal(), "-255");
}

TEST(BigInt, HexDecimalAgree) {
  EXPECT_EQ(BigInt::from_hex("ff"), big("255"));
  EXPECT_EQ(BigInt::from_hex("10000000000000000"), big("18446744073709551616"));
}

TEST(BigInt, ParseRejectsGarbage) {
  EXPECT_THROW(BigInt::from_decimal(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_decimal("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("-"), std::invalid_argument);
}

TEST(BigInt, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes = {0x01, 0x02, 0xfe, 0x00, 0x7f};
  const BigInt v = BigInt::from_bytes(bytes);
  EXPECT_EQ(v.to_hex(), "102fe007f");
  EXPECT_EQ(v.to_bytes(), bytes);
  EXPECT_EQ(BigInt().to_bytes(), std::vector<std::uint8_t>{0});
}

TEST(BigInt, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");  // bit 63 and bit 0
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

// -------------------------------------------------------- arithmetic ----

TEST(BigInt, AdditionSigns) {
  EXPECT_EQ(BigInt(5) + BigInt(-3), BigInt(2));
  EXPECT_EQ(BigInt(-5) + BigInt(3), BigInt(-2));
  EXPECT_EQ(BigInt(-5) + BigInt(-3), BigInt(-8));
  EXPECT_EQ(BigInt(5) + BigInt(-5), BigInt(0));
}

TEST(BigInt, SubtractionSigns) {
  EXPECT_EQ(BigInt(3) - BigInt(5), BigInt(-2));
  EXPECT_EQ(BigInt(-3) - BigInt(-5), BigInt(2));
  EXPECT_EQ(BigInt(3) - BigInt(3), BigInt(0));
}

TEST(BigInt, CarryPropagation) {
  const BigInt max64(~std::uint64_t{0});
  EXPECT_EQ((max64 + BigInt(1)).to_hex(), "10000000000000000");
  EXPECT_EQ(((max64 + BigInt(1)) - BigInt(1)), max64);
}

TEST(BigInt, MultiplicationBasics) {
  EXPECT_EQ(BigInt(6) * BigInt(7), BigInt(42));
  EXPECT_EQ(BigInt(-6) * BigInt(7), BigInt(-42));
  EXPECT_EQ(BigInt(-6) * BigInt(-7), BigInt(42));
  EXPECT_EQ(BigInt(6) * BigInt(0), BigInt(0));
}

TEST(BigInt, KnownLargeProduct) {
  // (2^128 - 1)^2 = 2^256 - 2^129 + 1
  const BigInt x = (BigInt(1) << 128) - BigInt(1);
  EXPECT_EQ(x * x, (BigInt(1) << 256) - (BigInt(1) << 129) + BigInt(1));
  EXPECT_EQ(x.squared(), x * x);
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(-7) / BigInt(-2), BigInt(3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_EQ(BigInt(7) % BigInt(-2), BigInt(1));
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
  EXPECT_THROW(BigInt(1) % BigInt(0), std::domain_error);
}

TEST(BigInt, ShiftRoundTrip) {
  const BigInt v = big("123456789123456789");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 200u}) {
    EXPECT_EQ((v << s) >> s, v) << s;
  }
  EXPECT_EQ(BigInt(1) << 0, BigInt(1));
  EXPECT_EQ(BigInt(255) >> 8, BigInt(0));
}

TEST(BigInt, Ordering) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_LT(BigInt(2), BigInt(5));
  EXPECT_LT(BigInt(5), BigInt(1) << 64);
  EXPECT_GT(BigInt(0), BigInt(-1));
}

// Property sweep: a = q*b + r with |r| < |b| and sign(r) == sign(a),
// across random operand shapes (exercises Knuth, Newton, and the
// single-limb paths).
class DivModProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DivModProperty, Invariant) {
  util::Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    BigInt a = random_value(rng, 4096);
    BigInt b = random_value(rng, 2048);
    if (b.is_zero()) b = BigInt(1);
    if (rng.chance(0.5)) a = -a;
    if (rng.chance(0.5)) b = -b;
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.abs(), b.abs());
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivModProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property sweep: ring axioms on random values.
class RingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingProperty, Axioms) {
  util::Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    const BigInt a = random_value(rng, 1500);
    const BigInt b = random_value(rng, 1500);
    const BigInt c = random_value(rng, 1500);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ((a - b) + b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingProperty, ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------ gcd / modular / prime ----

TEST(Gcd, SmallKnownValues) {
  EXPECT_EQ(gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(gcd(BigInt(17), BigInt(5)), BigInt(1));
  EXPECT_EQ(gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(gcd(BigInt(5), BigInt(0)), BigInt(5));
  EXPECT_EQ(gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(gcd(BigInt(-12), BigInt(18)), BigInt(6));
}

TEST(Gcd, RecoversPlantedCommonFactor) {
  const BigInt p = big("1000000000000000003");  // prime
  const BigInt a = p * big("999999999999999989");
  const BigInt b = p * big("999999999999999967");
  EXPECT_EQ(gcd(a, b), p);
}

TEST(Gcd, ExtendedGcdBezout) {
  util::Xoshiro256 rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt a = random_value(rng, 512);
    const BigInt b = random_value(rng, 512);
    const auto eg = extended_gcd(a, b);
    EXPECT_EQ(a * eg.x + b * eg.y, eg.g);
    EXPECT_EQ(eg.g, gcd(a, b));
  }
}

TEST(Modular, InverseProperty) {
  const BigInt m = big("1000000007");
  for (std::uint64_t a : {2ull, 3ull, 999999999ull, 123456789ull}) {
    const BigInt inv = mod_inverse(BigInt(a), m);
    EXPECT_EQ((BigInt(a) * inv) % m, BigInt(1));
  }
}

TEST(Modular, InverseFailsWhenNotCoprime) {
  EXPECT_THROW(mod_inverse(BigInt(6), BigInt(9)), std::domain_error);
  EXPECT_THROW(mod_inverse(BigInt(5), BigInt(1)), std::domain_error);
}

TEST(Modular, ModPowKnownValues) {
  EXPECT_EQ(mod_pow(BigInt(2), BigInt(10), BigInt(1000)), BigInt(24));
  EXPECT_EQ(mod_pow(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
  EXPECT_EQ(mod_pow(BigInt(0), BigInt(5), BigInt(7)), BigInt(0));
  // Fermat: a^(p-1) = 1 mod p.
  const BigInt p = big("1000000000000000003");
  EXPECT_EQ(mod_pow(BigInt(2), p - BigInt(1), p), BigInt(1));
}

TEST(Modular, ModPowEvenModulus) {
  // Exercises the non-Montgomery path.
  EXPECT_EQ(mod_pow(BigInt(3), BigInt(4), BigInt(100)), BigInt(81));
  EXPECT_EQ(mod_pow(BigInt(7), BigInt(13), BigInt(64)), BigInt(39));
}

TEST(Modular, ModPowMatchesNaive) {
  util::Xoshiro256 rng(9);
  for (int iter = 0; iter < 30; ++iter) {
    const BigInt a = random_value(rng, 96);
    const std::uint64_t e = rng.below(50);
    BigInt m = random_value(rng, 96) + BigInt(2);
    BigInt naive(1);
    for (std::uint64_t i = 0; i < e; ++i) naive = (naive * a) % m;
    EXPECT_EQ(mod_pow(a, BigInt(e), m), naive);
  }
}

TEST(Prime, SmallPrimesSieve) {
  const auto& primes = small_primes(10);
  const std::vector<std::uint32_t> expected = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29};
  EXPECT_EQ(primes, expected);
  EXPECT_EQ(small_primes(2048).size(), 2048u);
  EXPECT_EQ(small_primes(2048).back(), 17863u);  // the 2048th prime
}

TEST(Prime, ModSmall) {
  const BigInt v = big("123456789123456789123456789");
  EXPECT_EQ(mod_small(v, 97), v % BigInt(97) == BigInt(0)
                                  ? 0u
                                  : (v % BigInt(97)).to_uint64());
  EXPECT_EQ(mod_small(BigInt(0), 7), 0u);
  EXPECT_THROW(mod_small(v, 0), std::domain_error);
}

TEST(Prime, MillerRabinKnownPrimes) {
  PrngRandomSource src(3);
  EXPECT_TRUE(is_probable_prime(BigInt(2), src));
  EXPECT_TRUE(is_probable_prime(BigInt(3), src));
  EXPECT_TRUE(is_probable_prime(BigInt(97), src));
  EXPECT_TRUE(is_probable_prime(big("170141183460469231731687303715884105727"),
                                src));  // 2^127 - 1
}

TEST(Prime, MillerRabinKnownComposites) {
  PrngRandomSource src(3);
  EXPECT_FALSE(is_probable_prime(BigInt(1), src));
  EXPECT_FALSE(is_probable_prime(BigInt(0), src));
  EXPECT_FALSE(is_probable_prime(BigInt(561), src));   // Carmichael
  EXPECT_FALSE(is_probable_prime(BigInt(8911), src));  // Carmichael
  EXPECT_FALSE(is_probable_prime(big("170141183460469231731687303715884105725"),
                                 src));
}

TEST(Prime, RandomBitsSizedCorrectly) {
  PrngRandomSource src(4);
  for (std::size_t bits : {1u, 7u, 8u, 9u, 64u, 65u, 256u}) {
    for (int i = 0; i < 20; ++i) {
      EXPECT_LE(random_bits(src, bits).bit_length(), bits);
    }
  }
  EXPECT_TRUE(random_bits(src, 0).is_zero());
}

TEST(Prime, RandomRangeInclusive) {
  PrngRandomSource src(4);
  const BigInt low(10), high(20);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const BigInt v = random_range(src, low, high);
    ASSERT_GE(v, low);
    ASSERT_LE(v, high);
    seen.insert(v.to_uint64());
  }
  EXPECT_EQ(seen.size(), 11u);  // full coverage of [10, 20]
  EXPECT_THROW(random_range(src, high, low), std::invalid_argument);
}

// ---------------------------------------------------- tuning knobs ----

TEST(Tuning, KaratsubaMatchesSchoolbookAcrossThresholds) {
  util::Xoshiro256 rng(31);
  const BigInt a = random_value(rng, 8000);
  const BigInt b = random_value(rng, 8000);
  const BigInt reference = a * b;

  auto& threshold = Tuning::karatsuba_threshold();
  const std::size_t saved = threshold;
  for (std::size_t t : {8u, 16u, 40u, 1000000u}) {
    threshold = t;
    EXPECT_EQ(a * b, reference) << "threshold " << t;
  }
  threshold = saved;
}

TEST(Tuning, Toom3MatchesKaratsubaAcrossThresholds) {
  util::Xoshiro256 rng(33);
  const BigInt a = random_value(rng, 60000);
  const BigInt b = random_value(rng, 60000);

  auto& kara = Tuning::karatsuba_threshold();
  auto& toom = Tuning::toom3_threshold();
  const std::size_t saved_kara = kara, saved_toom = toom;

  toom = 1000000;  // Karatsuba-only reference
  const BigInt reference = a * b;
  for (std::size_t t : {16u, 48u, 200u}) {
    toom = t;
    EXPECT_EQ(a * b, reference) << "toom3 threshold " << t;
  }
  kara = saved_kara;
  toom = saved_toom;
}

TEST(Tuning, Toom3HandlesLopsidedOperands) {
  util::Xoshiro256 rng(34);
  const BigInt a = random_value(rng, 80000);
  const BigInt b = random_value(rng, 9000);
  auto& toom = Tuning::toom3_threshold();
  const std::size_t saved = toom;
  toom = 1000000;
  const BigInt reference = a * b;
  toom = 32;
  EXPECT_EQ(a * b, reference);
  EXPECT_EQ(b * a, reference);
  toom = saved;
}

TEST(Tuning, NewtonDivisionMatchesKnuthAcrossThresholds) {
  util::Xoshiro256 rng(32);
  const BigInt a = random_value(rng, 16000);
  const BigInt b = random_value(rng, 7000) + BigInt(1);
  const auto reference = BigInt::divmod(a, b);

  auto& threshold = Tuning::newton_div_threshold();
  const std::size_t saved = threshold;
  for (std::size_t t : {8u, 32u, 1000000u}) {
    threshold = t;
    const auto got = BigInt::divmod(a, b);
    EXPECT_EQ(got.quotient, reference.quotient) << "threshold " << t;
    EXPECT_EQ(got.remainder, reference.remainder) << "threshold " << t;
  }
  threshold = saved;
}

}  // namespace
}  // namespace weakkeys::bn

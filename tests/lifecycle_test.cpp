// Run lifecycle layer: cooperative cancellation semantics (token, thread
// pool, coordinator), crash-safe atomic file publication, the stall
// watchdog, deadline enforcement, signal-driven graceful shutdown, and the
// WKC1 study checkpoint format.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>
#define WEAKKEYS_TEST_POSIX 1
#endif

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/coordinator.hpp"
#include "core/study.hpp"
#include "core/study_checkpoint.hpp"
#include "obs/status_server.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/atomic_file.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys {
namespace {

using bn::BigInt;

// ------------------------------------------------- CancellationToken ------

TEST(CancellationToken, CancelTripsOnceWithFirstReason) {
  util::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), "");
  token.cancel("operator request");
  token.cancel("second caller loses");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "operator request");
  EXPECT_THROW(token.throw_if_cancelled(), util::Cancelled);
}

TEST(CancellationToken, CallbacksRunExactlyOnceAndLateRegistrantsImmediately) {
  util::CancellationToken token;
  std::atomic<int> runs{0};
  token.add_callback([&] { ++runs; });
  token.cancel("x");
  token.cancel("again");
  EXPECT_EQ(runs.load(), 1);
  token.add_callback([&] { ++runs; });  // already drained: runs now
  EXPECT_EQ(runs.load(), 2);
}

TEST(CancellationToken, RemovedCallbackDoesNotRun) {
  util::CancellationToken token;
  std::atomic<int> runs{0};
  const auto id = token.add_callback([&] { ++runs; });
  token.remove_callback(id);
  token.cancel("x");
  EXPECT_EQ(runs.load(), 0);
}

TEST(CancellationToken, AsyncRequestDefersCallbacksUntilPromote) {
  util::CancellationToken token;
  std::atomic<int> runs{0};
  token.add_callback([&] { ++runs; });
  token.request_async(SIGTERM);  // async-signal-safe path: no callbacks
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(token.signal(), SIGTERM);
  EXPECT_TRUE(token.promote());
  EXPECT_EQ(runs.load(), 1);
  EXPECT_FALSE(token.promote());  // promotion happens once
  EXPECT_EQ(token.reason(), "signal " + std::to_string(SIGTERM));
}

TEST(CancellationToken, DeadlineTripsAndLatches) {
  util::CancellationToken token;
  EXPECT_LT(token.deadline_remaining_s(), 0.0);  // unarmed
  token.set_deadline(std::chrono::steady_clock::now() +
                         std::chrono::hours(1),
                     "factor");
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.deadline_remaining_s(), 3500.0);
  token.set_deadline(std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1),
                     "factor");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), "deadline exceeded (factor)");
  // Latched: re-arming a future deadline does not untrip.
  token.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::hours(1));
  EXPECT_TRUE(token.cancelled());
}

// ---------------------------------------------------- atomic file I/O -----

TEST(AtomicFile, WritePublishesAtomicallyAndLeavesNoTmp) {
  const std::string path = "lifecycle_atomic_write.bin";
  util::atomic_write_file(path, std::string("first"));
  util::atomic_write_file(path, std::string("second"));
  std::ifstream in(path, std::ios::binary);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body, "second");
  std::ifstream tmp(util::atomic_tmp_path(path));
  EXPECT_FALSE(tmp.good()) << "orphan tmp file left behind";
  std::remove(path.c_str());
}

TEST(AtomicFile, PublishRenamesStreamedTmp) {
  const std::string path = "lifecycle_atomic_publish.bin";
  const std::string tmp = util::atomic_tmp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "streamed";
  }
  util::atomic_publish_file(tmp, path);
  std::ifstream in(path, std::ios::binary);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body, "streamed");
  std::ifstream leftover(tmp);
  EXPECT_FALSE(leftover.good());
  std::remove(path.c_str());
}

#if defined(WEAKKEYS_TEST_POSIX)
TEST(AtomicFile, ParentDirFsyncAfterPublish) {
  // Regression: rename() alone leaves the new directory entry only in
  // memory; both publishers must follow it with fsync_parent_dir so a
  // power cut after "publication" cannot lose the entry. Exercise the
  // helper's contract directly: bare names and subdirectory paths sync
  // their parent, a missing parent reports false instead of throwing.
  EXPECT_TRUE(util::fsync_parent_dir("lifecycle_bare_name.bin"));

  const std::string dir = "lifecycle_fsync_dir.d";
  ::mkdir(dir.c_str(), 0777);
  const std::string nested = dir + "/entry.bin";
  util::atomic_write_file(nested, std::string("payload"));
  EXPECT_TRUE(util::fsync_parent_dir(nested));
  std::ifstream in(nested, std::ios::binary);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  EXPECT_EQ(body, "payload");

  EXPECT_FALSE(util::fsync_parent_dir("no_such_dir.d/entry.bin"));

  std::remove(nested.c_str());
  ::rmdir(dir.c_str());
}
#endif

// ------------------------------------------------ ThreadPool + cancel -----

TEST(ThreadPoolCancel, PreTrippedTokenThrowsWithoutRunningTasks) {
  util::ThreadPool pool(2);
  util::CancellationToken token;
  token.cancel("before submit");
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64, [&](std::size_t) { ++ran; }, &token),
      util::Cancelled);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolCancel, MidRunTripStopsWorkAndThrowsExactlyOnce) {
  util::ThreadPool pool(2);
  util::CancellationToken token;
  std::atomic<std::size_t> ran{0};
  const std::size_t n = 10000;
  std::size_t throws = 0;
  try {
    // Tasks poll the token like every real batch task does. Task 16 trips
    // it; with only two workers in flight, thousands of queued tasks run
    // after the trip and must throw (collapsed into one Cancelled report)
    // rather than do their work.
    pool.parallel_for(
        n,
        [&](std::size_t i) {
          if (i == 16) token.cancel("mid-run");
          token.throw_if_cancelled();
          ++ran;
        },
        &token);
  } catch (const util::Cancelled&) {
    ++throws;
  }
  EXPECT_EQ(throws, 1u);
  // Far fewer than n tasks did work, but everything already submitted
  // drained (no lost workers, no dangling futures).
  EXPECT_LT(ran.load(), n);
  // The pool is still usable afterwards.
  std::atomic<std::size_t> again{0};
  pool.parallel_for(8, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 8u);
}

TEST(ThreadPoolCancel, TaskExceptionTakesPrecedenceOverCancellation) {
  util::ThreadPool pool(2);
  util::CancellationToken token;
  EXPECT_THROW(
      pool.parallel_for(
          32,
          [&](std::size_t i) {
            if (i == 0) {
              token.cancel("also tripped");
              throw std::runtime_error("real failure");
            }
          },
          &token),
      std::runtime_error);
}

// ------------------------------------------------- coordinator cancel -----

std::vector<BigInt> lifecycle_moduli(std::uint64_t seed, std::size_t healthy) {
  std::vector<BigInt> moduli;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 6;
  for (std::size_t i = 0; i < healthy; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  std::vector<BigInt> primes;
  for (int i = 0; i < 4; ++i) {
    primes.push_back(rsa::generate_prime(rng, 64, opts));
  }
  moduli.push_back(primes[0] * primes[1]);
  moduli.push_back(primes[0] * primes[2]);
  moduli.push_back(primes[1] * primes[3]);
  return moduli;
}

TEST(CoordinatorCancel, PreTrippedTokenThrowsBeforeAnyWork) {
  const auto moduli = lifecycle_moduli(7, 12);
  util::CancellationToken token;
  token.cancel("pre-tripped");
  batchgcd::CoordinatorConfig config;
  config.subsets = 3;
  config.workers = 2;
  config.cancel = &token;
  batchgcd::CoordinatorStats stats;
  EXPECT_THROW(batchgcd::batch_gcd_coordinated(moduli, config, &stats),
               util::Cancelled);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(CoordinatorCancel, MidRunCancelRetainsJournalAndResumes) {
  const auto moduli = lifecycle_moduli(11, 16);
  const std::string ckpt = "lifecycle_cancel.gcdckpt";
  std::remove(ckpt.c_str());
  const auto reference = batchgcd::batch_gcd(moduli);

  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  util::CancellationToken token;
  // Injected stragglers (30ms each at 60% per attempt) keep the run busy
  // long enough that the cancel deterministically lands mid-flight; the
  // tiny 128-bit tasks alone finish in a few milliseconds.
  util::FaultConfig faults;
  faults.seed = 3;
  faults.straggle_probability = 0.6;
  const util::FaultInjector injector(faults);
  batchgcd::CoordinatorConfig config;
  config.subsets = 4;
  config.workers = 2;
  config.straggler_deadline = std::chrono::milliseconds(30);
  config.checkpoint_path = ckpt;
  config.cancel = &token;
  config.injector = &injector;
  config.telemetry = &telemetry;
  auto& executed = telemetry.metrics().counter("coordinator.tasks_executed");
  std::thread canceller([&] {
    while (executed.value() < 2) std::this_thread::yield();
    token.cancel("mid-run cancel");
  });
  batchgcd::CoordinatorStats stats;
  EXPECT_THROW(batchgcd::batch_gcd_coordinated(moduli, config, &stats),
               util::Cancelled);
  canceller.join();
  EXPECT_GT(stats.tasks_executed, 0u);
  EXPECT_LT(stats.tasks_executed, stats.tasks);
  {
    std::ifstream journal(ckpt, std::ios::binary);
    EXPECT_TRUE(journal.good()) << "cancel must retain the journal";
  }

  // Resume without the token: only unfinished tasks execute, output is
  // element-for-element the reference.
  batchgcd::CoordinatorConfig resume = config;
  resume.cancel = nullptr;
  batchgcd::CoordinatorStats resumed;
  const auto result = batchgcd::batch_gcd_coordinated(moduli, resume, &resumed);
  EXPECT_GT(resumed.tasks_resumed, 0u);
  EXPECT_EQ(resumed.tasks_resumed + resumed.tasks_executed, resumed.tasks);
  ASSERT_EQ(result.divisors.size(), reference.divisors.size());
  for (std::size_t i = 0; i < reference.divisors.size(); ++i) {
    EXPECT_EQ(result.divisors[i], reference.divisors[i]) << "index " << i;
  }
  std::remove(ckpt.c_str());
}

TEST(CoordinatorCancel, StragglerDeadlineReassignsAndCountsWatchdogMetric) {
  const auto moduli = lifecycle_moduli(13, 12);
  const auto reference = batchgcd::batch_gcd(moduli);
  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  util::FaultConfig faults;
  faults.seed = 5;
  faults.straggle_probability = 0.4;
  const util::FaultInjector injector(faults);
  batchgcd::CoordinatorConfig config;
  config.subsets = 3;
  config.workers = 2;
  config.straggler_deadline = std::chrono::milliseconds(1);
  config.injector = &injector;
  config.telemetry = &telemetry;
  batchgcd::CoordinatorStats stats;
  const auto result = batchgcd::batch_gcd_coordinated(moduli, config, &stats);
  EXPECT_GT(stats.stragglers_killed, 0u);
  // Each straggler kill is a per-task watchdog firing: deadline exceeded,
  // task reassigned.
  EXPECT_EQ(
      telemetry.metrics().counter("watchdog.tasks_reassigned").value(),
      stats.stragglers_killed);
  for (std::size_t i = 0; i < reference.divisors.size(); ++i) {
    EXPECT_EQ(result.divisors[i], reference.divisors[i]);
  }
}

// ------------------------------------------------------------ watchdog ----

TEST(Watchdog, DeclaresStallOnceAndRearmsOnMovement) {
  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  auto& work = telemetry.metrics().counter("coordinator.tasks_executed");
  std::vector<std::string> stalls;
  obs::WatchdogConfig config;
  config.stall_ticks = 3;
  config.on_stall = [&](const std::string& diag) { stalls.push_back(diag); };
  obs::Watchdog watchdog(telemetry, config);

  work.inc();
  EXPECT_FALSE(watchdog.observe(telemetry.metrics().snapshot()));  // baseline
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(watchdog.observe(telemetry.metrics().snapshot()));
  }
  EXPECT_TRUE(watchdog.observe(telemetry.metrics().snapshot()));  // 3rd quiet
  EXPECT_TRUE(watchdog.stalled());
  EXPECT_EQ(watchdog.stalls_declared(), 1u);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_NE(stalls[0].find("3 quiet ticks"), std::string::npos);
  // Episode stays open without re-firing.
  EXPECT_FALSE(watchdog.observe(telemetry.metrics().snapshot()));
  EXPECT_EQ(watchdog.stalls_declared(), 1u);
  // Movement closes the episode and re-arms.
  work.inc();
  EXPECT_FALSE(watchdog.observe(telemetry.metrics().snapshot()));
  EXPECT_FALSE(watchdog.stalled());
  for (int i = 0; i < 2; ++i) watchdog.observe(telemetry.metrics().snapshot());
  EXPECT_TRUE(watchdog.observe(telemetry.metrics().snapshot()));
  EXPECT_EQ(watchdog.stalls_declared(), 2u);
  EXPECT_EQ(telemetry.metrics().counter("watchdog.stalls").value(), 2u);
}

TEST(Watchdog, UnwatchedCounterMovementDoesNotResetQuiet) {
  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  auto& noise = telemetry.metrics().counter("other.background");
  obs::WatchdogConfig config;
  config.stall_ticks = 2;
  config.watch_prefixes = {"coordinator."};
  obs::Watchdog watchdog(telemetry, config);
  watchdog.observe(telemetry.metrics().snapshot());  // baseline
  noise.inc();
  EXPECT_FALSE(watchdog.observe(telemetry.metrics().snapshot()));
  noise.inc();
  EXPECT_TRUE(watchdog.observe(telemetry.metrics().snapshot()));
  EXPECT_TRUE(watchdog.stalled());
}

TEST(Watchdog, DiagnosticCarriesWorkerLivenessAndQueueDepth) {
  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  telemetry.metrics().counter("coordinator.worker.0.attempts").inc(7);
  telemetry.metrics().counter("coordinator.worker.1.attempts").inc(3);
  telemetry.metrics().gauge("threadpool.queue_depth").set(11);
  telemetry.metrics().counter("coordinator.tasks").set(9);
  telemetry.metrics().counter("coordinator.tasks_executed").set(4);
  obs::Watchdog watchdog(telemetry, {});
  const std::string diag =
      watchdog.diagnostic(telemetry.metrics().snapshot());
  EXPECT_NE(diag.find("0:7"), std::string::npos);
  EXPECT_NE(diag.find("1:3"), std::string::npos);
  EXPECT_NE(diag.find("queue 11"), std::string::npos);
  EXPECT_NE(diag.find("gcd 4/9"), std::string::npos);
}

// ------------------------------------------------- WKC1 checkpoint --------

TEST(StudyCheckpointFormat, RoundTripsAndBindsToKey) {
  const std::string path = "lifecycle_ckpt.study";
  core::StudyCheckpoint cp;
  cp.key = {1234, 30000, 4, 7, 99, 3, 1};
  cp.generation = 5;
  cp.stage = core::StudyStage::kFactored;
  core::save_study_checkpoint(cp, path);
  {
    std::ifstream tmp(util::atomic_tmp_path(path));
    EXPECT_FALSE(tmp.good());
  }
  const auto loaded = core::load_study_checkpoint(cp.key, path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 5u);
  EXPECT_EQ(loaded->stage, core::StudyStage::kFactored);

  // Any key mismatch invalidates the checkpoint.
  auto other = cp.key;
  other.seed = 4321;
  EXPECT_FALSE(core::load_study_checkpoint(other, path).has_value());
  std::remove(path.c_str());
}

TEST(StudyCheckpointFormat, RejectsTruncationAndBitFlips) {
  const std::string path = "lifecycle_ckpt_corrupt.study";
  core::StudyCheckpoint cp;
  cp.key = {1, 2, 3, 4, 5, 6, 0};
  cp.generation = 2;
  cp.stage = core::StudyStage::kIngested;
  core::save_study_checkpoint(cp, path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() - 5);  // truncate
  }
  EXPECT_FALSE(core::load_study_checkpoint(cp.key, path).has_value());
  bytes[10] ^= 0x40;  // bit flip
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(core::load_study_checkpoint(cp.key, path).has_value());
  EXPECT_FALSE(
      core::load_study_checkpoint(cp.key, "does_not_exist.study").has_value());
  std::remove(path.c_str());
}

// --------------------------------------------- study-level lifecycle ------

core::StudyConfig tiny_study_config(std::uint64_t seed) {
  core::StudyConfig config;
  config.sim.seed = seed;
  config.sim.scale = 0.02;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 2;
  config.threads = 2;
  config.cache_path = "";
  return config;
}

TEST(StudyLifecycle, RunDeadlineCancelsAndReportsState) {
  auto config = tiny_study_config(777);
  config.run_deadline = std::chrono::milliseconds(30);
  core::Study study(config);
  EXPECT_EQ(study.run_state(), core::RunState::kIdle);
  EXPECT_THROW(study.run(), util::Cancelled);
  EXPECT_EQ(study.run_state(), core::RunState::kCancelled);
  const auto ls = study.lifecycle();
  EXPECT_FALSE(ls.healthy);
  EXPECT_NE(ls.cancel_reason.find("deadline exceeded"), std::string::npos);
}

TEST(StudyLifecycle, ExplicitCancelFromAnotherThreadUnwinds) {
  auto config = tiny_study_config(778);
  core::Study study(config);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    study.cancel("test cancel");
  });
  EXPECT_THROW(study.run(), util::Cancelled);
  canceller.join();
  EXPECT_EQ(study.run_state(), core::RunState::kCancelled);
  EXPECT_EQ(study.lifecycle().cancel_reason, "test cancel");
}

TEST(StudyLifecycle, CheckpointAdvancesThroughStagesAndSupportsResume) {
  const std::string cache = "lifecycle_stages.cache";
  for (const char* suffix : {"", ".factors", ".gcdckpt", ".study"}) {
    std::remove((cache + suffix).c_str());
  }
  auto config = tiny_study_config(779);
  config.cache_path = cache;
  {
    core::Study study(config);
    study.run();
    EXPECT_EQ(study.run_state(), core::RunState::kDone);
    auto& m = study.telemetry().metrics();
    EXPECT_EQ(m.counter("checkpoint.writes").value(), 3u);
    EXPECT_EQ(m.counter("checkpoint.generation").value(), 3u);
  }
  // Second run with resume: continues the generation count and reports the
  // resumed stage; the corpus and factor caches short-circuit the work.
  auto again = config;
  again.resume = true;
  core::Study study(again);
  study.run();
  auto& m = study.telemetry().metrics();
  EXPECT_EQ(m.counter("checkpoint.resume.stage").value(),
            static_cast<std::uint64_t>(core::StudyStage::kDone));
  EXPECT_EQ(m.counter("cache.corpus.hit").value(), 1u);
  EXPECT_EQ(m.counter("cache.factors.hit").value(), 1u);
  EXPECT_EQ(m.counter("checkpoint.generation").value(), 6u);
  for (const char* suffix : {"", ".factors", ".gcdckpt", ".study"}) {
    std::remove((cache + suffix).c_str());
  }
}

TEST(StudyLifecycle, FlushTelemetryIsIdempotent) {
  auto config = tiny_study_config(780);
  config.monitor_path = "lifecycle_flush.monitor.jsonl";
  core::Study study(config);
  study.run();
  ASSERT_NE(study.monitor(), nullptr);
  const auto written = study.monitor()->snapshots_written();
  EXPECT_GT(written, 0u);
  study.flush_telemetry();  // run() already flushed: both are no-ops
  study.flush_telemetry();
  EXPECT_EQ(study.monitor()->snapshots_written(), written);
  std::remove(config.monitor_path.c_str());
}

#if defined(WEAKKEYS_TEST_POSIX)

TEST(StudyLifecycle, SigtermMidRunUnwindsGracefullyAndWritesCheckpoint) {
  const std::string cache = "lifecycle_sigterm.cache";
  for (const char* suffix : {"", ".factors", ".gcdckpt", ".study"}) {
    std::remove((cache + suffix).c_str());
  }
  auto config = tiny_study_config(781);
  config.cache_path = cache;
  config.handle_signals = true;
  core::Study study(config);
  std::thread signaller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ::raise(SIGTERM);  // handler trips the token; the process survives
  });
  EXPECT_THROW(study.run(), util::Cancelled);
  signaller.join();
  EXPECT_EQ(study.run_state(), core::RunState::kCancelled);
  EXPECT_EQ(study.cancellation_token().signal(), SIGTERM);
  EXPECT_NE(study.lifecycle().cancel_reason.find("signal"),
            std::string::npos);
  // The interruption checkpoint was written (atomically: no tmp orphan).
  EXPECT_GT(
      study.telemetry().metrics().counter("checkpoint.writes").value(), 0u);
  std::ifstream tmp(util::atomic_tmp_path(cache + ".study"));
  EXPECT_FALSE(tmp.good());
  for (const char* suffix : {"", ".factors", ".gcdckpt", ".study"}) {
    std::remove((cache + suffix).c_str());
  }
}

TEST(StudyLifecycle, SigtermDuringDestructorFlushIsSafe) {
  // A signal landing while the Study tears down (handlers are still
  // installed until the watcher member is destroyed) must neither kill the
  // process nor double-flush.
  auto config = tiny_study_config(782);
  config.handle_signals = true;
  {
    core::Study study(config);
    study.run();
    EXPECT_EQ(study.run_state(), core::RunState::kDone);
    ::raise(SIGTERM);  // delivered with the run finished, dtor about to run
    EXPECT_TRUE(study.cancellation_token().cancelled());
  }  // dtor flush runs with the token tripped — must be a clean no-op
  SUCCEED() << "destructor completed under a pending SIGTERM";
}

TEST(StatusServerLifecycle, HealthzFollowsLifecycleProbe) {
  obs::Telemetry telemetry(/*tracing_enabled=*/false);
  std::atomic<bool> healthy{true};
  obs::StatusServerConfig config;
  config.lifecycle = [&] {
    obs::LifecycleStatus ls;
    ls.healthy = healthy.load();
    ls.phase = healthy.load() ? "running" : "cancelled";
    ls.stage = "factor";
    ls.cancel_reason = healthy.load() ? "" : "deadline exceeded (run)";
    return ls;
  };
  obs::StatusServer server(telemetry, config);
  ASSERT_TRUE(server.start());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const auto http_get = [port](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    std::string response;
    if (fd < 0) return response;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      const std::string request =
          "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
      if (::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
        char buf[4096];
        ssize_t n;
        while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
          response.append(buf, static_cast<std::size_t>(n));
        }
      }
    }
    ::close(fd);
    return response;
  };

  std::string response = http_get("/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok"), std::string::npos);

  healthy.store(false);
  response = http_get("/healthz");
  EXPECT_NE(response.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\ncancelled"), std::string::npos);

  response = http_get("/status");
  EXPECT_NE(response.find("\"lifecycle\":{\"phase\":\"cancelled\""),
            std::string::npos);
  EXPECT_NE(response.find("\"stage\":\"factor\""), std::string::npos);
  EXPECT_NE(response.find("\"cancel_reason\":\"deadline exceeded (run)\""),
            std::string::npos);
  server.stop();
}

#endif  // WEAKKEYS_TEST_POSIX

}  // namespace
}  // namespace weakkeys

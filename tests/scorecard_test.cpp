#include <gtest/gtest.h>

#include "analysis/scorecard.hpp"

namespace weakkeys::analysis {
namespace {

using bn::BigInt;
using netsim::ResponseClass;

netsim::CertHandle cert_for(const std::string& vendor, std::uint64_t modulus) {
  auto c = std::make_shared<cert::Certificate>();
  c->subject.add("CN", "host");
  c->subject.add("O", vendor);
  c->issuer = c->subject;
  c->key.n = BigInt(modulus);
  c->key.e = BigInt(65537);
  return c;
}

RecordLabeler labeler() {
  return [](const netsim::HostRecord& rec)
             -> std::optional<fingerprint::VendorLabel> {
    const std::string org = rec.cert().subject.get("O");
    if (org.empty()) return std::nullopt;
    return fingerprint::VendorLabel{org, "", "subject"};
  };
}

/// Vendor A (advisory): 4 vulnerable at peak, 1 at end.
/// Vendor B (no response): 4 vulnerable at peak, 1 at end. Same outcome —
/// the Section 5.2 non-correlation in miniature.
/// Vendor C (advisory): never vulnerable — excluded from scoring.
netsim::ScanDataset dataset() {
  netsim::ScanDataset ds;
  std::vector<netsim::CertHandle> a_vuln, b_vuln;
  for (std::uint64_t i = 0; i < 4; ++i) {
    a_vuln.push_back(cert_for("A", 100 + i));
    b_vuln.push_back(cert_for("B", 200 + i));
  }
  const auto c_clean = cert_for("C", 301);

  netsim::ScanSnapshot peak{util::Date(2013, 1, 15), "Test",
                            netsim::Protocol::kHttps, {}};
  std::uint32_t ip = 1;
  for (const auto& c : a_vuln)
    peak.records.push_back({peak.date, "Test", netsim::Ipv4(ip++),
                            netsim::Protocol::kHttps, c, "", {}});
  for (const auto& c : b_vuln)
    peak.records.push_back({peak.date, "Test", netsim::Ipv4(ip++),
                            netsim::Protocol::kHttps, c, "", {}});
  peak.records.push_back({peak.date, "Test", netsim::Ipv4(ip++),
                          netsim::Protocol::kHttps, c_clean, "", {}});

  netsim::ScanSnapshot end{util::Date(2016, 1, 15), "Test",
                           netsim::Protocol::kHttps, {}};
  end.records.push_back({end.date, "Test", netsim::Ipv4(1),
                         netsim::Protocol::kHttps, a_vuln[0], "", {}});
  end.records.push_back({end.date, "Test", netsim::Ipv4(5),
                         netsim::Protocol::kHttps, b_vuln[0], "", {}});
  end.records.push_back({end.date, "Test", netsim::Ipv4(9),
                         netsim::Protocol::kHttps, c_clean, "", {}});
  ds.snapshots = {peak, end};
  return ds;
}

VulnerableSet vulnerable() {
  VulnerableSet v;
  for (std::uint64_t i = 0; i < 4; ++i) {
    v.insert(BigInt(100 + i));
    v.insert(BigInt(200 + i));
  }
  return v;
}

std::vector<netsim::VendorNotification> notifications() {
  return {
      {"A", ResponseClass::kPublicAdvisory, true, true, ""},
      {"B", ResponseClass::kNoResponse, true, true, ""},
      {"C", ResponseClass::kPublicAdvisory, true, true, ""},
  };
}

TEST(Scorecard, ScoresVendorsAndGroupsByClass) {
  const auto ds = dataset();
  const TimeSeriesBuilder builder(ds, vulnerable(), labeler());
  const auto summary = build_scorecard(builder, notifications());

  ASSERT_EQ(summary.scores.size(), 2u);  // C excluded (never vulnerable)
  for (const auto& score : summary.scores) {
    EXPECT_EQ(score.peak_vulnerable, 4u);
    EXPECT_EQ(score.final_vulnerable, 1u);
    EXPECT_DOUBLE_EQ(score.remediation_ratio(), 0.25);
  }
  // Identical outcomes => zero spread between class means.
  EXPECT_DOUBLE_EQ(summary.class_mean_spread, 0.0);
  EXPECT_DOUBLE_EQ(summary.overall_mean, 0.25);
  EXPECT_DOUBLE_EQ(
      summary.mean_ratio_by_class.at(ResponseClass::kPublicAdvisory), 0.25);
  EXPECT_DOUBLE_EQ(summary.mean_ratio_by_class.at(ResponseClass::kNoResponse),
                   0.25);
}

TEST(Scorecard, AliasesMapFingerprintNamesToTableNames) {
  const auto ds = dataset();
  const TimeSeriesBuilder builder(ds, vulnerable(), labeler());
  // Notifications know vendor A as "Alpha Corp".
  std::vector<netsim::VendorNotification> notes = {
      {"Alpha Corp", ResponseClass::kPrivateResponse, true, true, ""},
  };
  const auto summary =
      build_scorecard(builder, notes, {{"A", "Alpha Corp"}});
  ASSERT_EQ(summary.scores.size(), 1u);
  EXPECT_EQ(summary.scores[0].vendor, "A");
  EXPECT_EQ(summary.scores[0].response, ResponseClass::kPrivateResponse);
}

TEST(Scorecard, UnnotifiedVendorsIgnored) {
  const auto ds = dataset();
  const TimeSeriesBuilder builder(ds, vulnerable(), labeler());
  EXPECT_TRUE(build_scorecard(builder, {}).scores.empty());
}

}  // namespace
}  // namespace weakkeys::analysis

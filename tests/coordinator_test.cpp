// Fault-tolerant coordinator: output equivalence under injected faults,
// fault-schedule determinism, checkpoint/resume, and Study integration.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/coordinator.hpp"
#include "core/study.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/fault_injector.hpp"

namespace weakkeys::batchgcd {
namespace {

using bn::BigInt;

/// Small corpus with planted shared-prime structure (and a duplicate), so
/// every subset has real divisors for corruption/verification to bite on.
std::vector<BigInt> make_moduli(std::uint64_t seed, std::size_t healthy) {
  std::vector<BigInt> moduli;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 6;
  for (std::size_t i = 0; i < healthy; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  std::vector<BigInt> primes;
  for (int i = 0; i < 8; ++i) {
    primes.push_back(rsa::generate_prime(rng, 64, opts));
  }
  moduli.push_back(primes[0] * primes[1]);  // pair sharing primes[0]
  moduli.push_back(primes[0] * primes[2]);
  moduli.push_back(primes[3] * primes[4]);  // star of three sharing primes[3]
  moduli.push_back(primes[3] * primes[5]);
  moduli.push_back(primes[3] * primes[6]);
  moduli.push_back(primes[1] * primes[7]);
  moduli.push_back(primes[1] * primes[7]);  // duplicate
  return moduli;
}

CoordinatorConfig fast_config(std::size_t k, std::size_t workers) {
  CoordinatorConfig config;
  config.subsets = k;
  config.workers = workers;
  config.retry.base = std::chrono::milliseconds(1);
  config.retry.cap = std::chrono::milliseconds(8);
  config.straggler_deadline = std::chrono::milliseconds(1);
  return config;
}

// ------------------------------------------------------ fault-free path ----

TEST(Coordinator, FaultFreeMatchesBatchGcd) {
  const auto moduli = make_moduli(101, 25);
  const auto reference = batch_gcd(moduli);
  for (const std::size_t k : {1u, 3u, 5u}) {
    CoordinatorStats stats;
    const auto result =
        batch_gcd_coordinated(moduli, fast_config(k, 4), &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "k=" << k;
    EXPECT_EQ(stats.tasks, k * k);
    EXPECT_EQ(stats.attempts, k * k);  // every task succeeds first try
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.tasks_executed, k * k);
    EXPECT_EQ(stats.tasks_resumed, 0u);
  }
}

TEST(Coordinator, EmptyAndSingleInputs) {
  CoordinatorStats stats;
  const auto empty =
      batch_gcd_coordinated({}, fast_config(4, 2), &stats);
  EXPECT_TRUE(empty.divisors.empty());

  const std::vector<BigInt> one = {BigInt(77)};
  const auto single = batch_gcd_coordinated(one, fast_config(4, 2), &stats);
  ASSERT_EQ(single.divisors.size(), 1u);
  EXPECT_EQ(single.divisors[0], BigInt(1));
}

// -------------------------------------------------- equivalence w/ faults ----

class CoordinatorFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoordinatorFaults, HeavyFaultsStillMatchBatchGcd) {
  // >= 20% per-task fault probability across all three failure modes plus
  // tree loss — the acceptance bar from the issue.
  const auto moduli = make_moduli(GetParam(), 20);
  const auto reference = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = GetParam() * 31 + 7;
  faults.crash_probability = 0.10;
  faults.straggle_probability = 0.08;
  faults.corrupt_probability = 0.10;
  faults.tree_loss_probability = 0.05;
  const util::FaultInjector injector(faults);

  auto config = fast_config(4, 3);
  config.injector = &injector;
  CoordinatorStats stats;
  const auto result = batch_gcd_coordinated(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_EQ(stats.tasks_executed, stats.tasks);
  EXPECT_EQ(stats.retries,
            stats.crashes + stats.stragglers_killed + stats.corruptions_caught);
  EXPECT_EQ(stats.attempts, stats.tasks + stats.retries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoordinatorFaults,
                         ::testing::Values(11, 12, 13, 14));

TEST(Coordinator, CorruptedResultsAreCaughtNotAccepted) {
  const auto moduli = make_moduli(55, 18);
  const auto reference = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 99;
  faults.corrupt_probability = 0.5;  // half of all attempts return garbage
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 2);
  config.injector = &injector;
  CoordinatorStats stats;
  const auto result = batch_gcd_coordinated(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.corruptions_caught, 0u);
  EXPECT_EQ(stats.crashes, 0u);
  EXPECT_EQ(stats.stragglers_killed, 0u);
}

TEST(Coordinator, ExhaustedRetriesThrow) {
  const auto moduli = make_moduli(77, 6);
  util::FaultConfig faults;
  faults.seed = 5;
  faults.crash_probability = 1.0;  // every attempt crashes
  const util::FaultInjector injector(faults);

  auto config = fast_config(2, 2);
  config.injector = &injector;
  config.retry.max_attempts = 3;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config), CoordinatorError);
}

// ------------------------------------------------ schedule determinism ----

TEST(FaultInjector, DecisionIsPureFunctionOfTaskAndAttempt) {
  util::FaultConfig faults;
  faults.seed = 42;
  faults.crash_probability = 0.2;
  faults.straggle_probability = 0.2;
  faults.corrupt_probability = 0.2;
  faults.tree_loss_probability = 0.1;
  const util::FaultInjector a(faults);
  const util::FaultInjector b(faults);
  bool saw_fault = false, saw_none = false;
  for (std::uint64_t task = 0; task < 64; ++task) {
    for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
      const auto da = a.decide(task, attempt);
      const auto db = b.decide(task, attempt);
      EXPECT_EQ(da.kind, db.kind);
      EXPECT_EQ(da.lose_tree, db.lose_tree);
      EXPECT_EQ(da.corrupt_slot, db.corrupt_slot);
      (da.kind == util::FaultKind::kNone ? saw_none : saw_fault) = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_none);

  faults.seed = 43;  // different seed, different schedule
  const util::FaultInjector c(faults);
  bool differs = false;
  for (std::uint64_t task = 0; task < 64 && !differs; ++task) {
    differs = c.decide(task, 0).kind != a.decide(task, 0).kind;
  }
  EXPECT_TRUE(differs);
}

TEST(Coordinator, SameSeedSameScheduleAcrossWorkerCounts) {
  // The same FaultInjector seed must yield the same injected
  // crash/straggler/corruption sequence and the same final BatchGcdResult
  // across 1-, 2-, and 8-worker coordinators.
  const auto moduli = make_moduli(202, 16);
  const auto reference = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 2024;
  faults.crash_probability = 0.12;
  faults.straggle_probability = 0.08;
  faults.corrupt_probability = 0.12;
  faults.tree_loss_probability = 0.05;
  const util::FaultInjector injector(faults);

  CoordinatorStats baseline;
  bool have_baseline = false;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto config = fast_config(4, workers);
    config.injector = &injector;
    CoordinatorStats stats;
    const auto result = batch_gcd_coordinated(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "workers=" << workers;
    if (!have_baseline) {
      baseline = stats;
      have_baseline = true;
      EXPECT_GT(stats.retries, 0u);  // the schedule must actually inject
    } else {
      EXPECT_EQ(stats.attempts, baseline.attempts) << "workers=" << workers;
      EXPECT_EQ(stats.retries, baseline.retries) << "workers=" << workers;
      EXPECT_EQ(stats.crashes, baseline.crashes) << "workers=" << workers;
      EXPECT_EQ(stats.stragglers_killed, baseline.stragglers_killed)
          << "workers=" << workers;
      EXPECT_EQ(stats.corruptions_caught, baseline.corruptions_caught)
          << "workers=" << workers;
      EXPECT_EQ(stats.trees_rebuilt, baseline.trees_rebuilt)
          << "workers=" << workers;
    }
  }
}

// -------------------------------------------------- checkpoint / resume ----

class CoordinatorCheckpoint : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Unique per test: ctest runs each gtest case as its own process in a
  // shared working directory, so a shared journal name lets concurrent
  // tests delete each other's checkpoints mid-resume.
  const std::string path_ =
      std::string("coordinator_ckpt_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".tmp";
};

TEST_F(CoordinatorCheckpoint, KilledRunResumesExecutingOnlyUnfinishedTasks) {
  const auto moduli = make_moduli(301, 20);
  const auto reference = batch_gcd(moduli);
  const std::size_t k = 4;

  auto config = fast_config(k, 2);
  config.checkpoint_path = path_;
  config.halt_after_tasks = 5;  // simulate being killed mid-flight
  CoordinatorStats first;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config, &first),
               CoordinatorInterrupted);
  EXPECT_GE(first.tasks_executed, 5u);
  EXPECT_LT(first.tasks_executed, k * k);

  config.halt_after_tasks = 0;
  CoordinatorStats second;
  const auto result = batch_gcd_coordinated(moduli, config, &second);
  EXPECT_EQ(result.divisors, reference.divisors);
  // The resumed run loads exactly what the killed run committed and
  // re-executes only the remainder.
  EXPECT_EQ(second.tasks_resumed, first.tasks_executed);
  EXPECT_EQ(second.tasks_executed, k * k - first.tasks_executed);
  // Success removes the journal; a third run starts from scratch.
  CoordinatorStats third;
  batch_gcd_coordinated(moduli, config, &third);
  EXPECT_EQ(third.tasks_resumed, 0u);
}

TEST_F(CoordinatorCheckpoint, ResumeSurvivesInjectedFaults) {
  const auto moduli = make_moduli(302, 18);
  const auto reference = batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 7;
  faults.crash_probability = 0.15;
  faults.corrupt_probability = 0.15;
  const util::FaultInjector injector(faults);

  auto config = fast_config(4, 2);
  config.checkpoint_path = path_;
  config.injector = &injector;
  config.halt_after_tasks = 6;
  CoordinatorStats first;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config, &first),
               CoordinatorInterrupted);

  config.halt_after_tasks = 0;
  CoordinatorStats second;
  const auto result = batch_gcd_coordinated(moduli, config, &second);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_EQ(second.tasks_resumed, first.tasks_executed);
}

TEST_F(CoordinatorCheckpoint, TruncatedOrFlippedJournalIsDiscardedSafely) {
  const auto moduli = make_moduli(303, 16);
  const auto reference = batch_gcd(moduli);

  auto config = fast_config(3, 2);
  config.checkpoint_path = path_;
  config.halt_after_tasks = 4;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config), CoordinatorInterrupted);

  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_FALSE(bytes.empty());

  config.halt_after_tasks = 0;
  for (const double keep_fraction : {0.3, 0.65, 0.95}) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * keep_fraction));
    }
    CoordinatorStats stats;
    const auto result = batch_gcd_coordinated(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors)
        << "keep=" << keep_fraction;
    EXPECT_EQ(stats.tasks_resumed + stats.tasks_executed, stats.tasks);
  }

  // Bit flip in the record region: the CRC rejects the tail, the run
  // still completes correctly.
  {
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  const auto result = batch_gcd_coordinated(moduli, config);
  EXPECT_EQ(result.divisors, reference.divisors);
}

TEST_F(CoordinatorCheckpoint, TornWriteAtEveryBoundaryResumesExactPrefix) {
  // Systematic torn-tail sweep: cut the journal at *every* record boundary
  // and mid-record, and assert the resumed run replays exactly the intact
  // prefix and re-executes exactly the rest. This pins down the recovery
  // contract the fractional-truncation test above only samples.
  const auto moduli = make_moduli(306, 16);
  const auto reference = batch_gcd(moduli);
  const std::size_t k = 3;

  auto config = fast_config(k, 2);
  config.checkpoint_path = path_;
  config.halt_after_tasks = 7;
  CoordinatorStats first;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config, &first),
               CoordinatorInterrupted);

  std::ifstream in(path_, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();

  // Walk the record framing: a 20-byte header (magic, version, fingerprint,
  // total), then records of u32 payload-length | payload | u32 crc.
  const auto u32_at = [&bytes](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
      v = (v << 8) | static_cast<std::uint8_t>(bytes[at + i]);
    return v;
  };
  std::vector<std::size_t> boundaries{20};
  while (boundaries.back() + 4 <= bytes.size()) {
    const std::size_t next =
        boundaries.back() + 4 + u32_at(boundaries.back()) + 4;
    if (next > bytes.size()) break;
    boundaries.push_back(next);
  }
  ASSERT_EQ(boundaries.back(), bytes.size());  // halt left no torn tail
  const std::size_t records = boundaries.size() - 1;
  ASSERT_EQ(records, first.tasks_executed);

  const auto truncate_to = [&](std::size_t size) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size));
  };
  config.halt_after_tasks = 0;

  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    // Cut exactly at a boundary: the first i records are intact.
    truncate_to(boundaries[i]);
    CoordinatorStats stats;
    const auto result = batch_gcd_coordinated(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "boundary " << i;
    EXPECT_EQ(stats.tasks_resumed, i) << "boundary " << i;
    EXPECT_EQ(stats.tasks_executed, k * k - i) << "boundary " << i;
  }
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    // Cut mid-record: record i is torn and must be dropped, records
    // before it must all survive.
    truncate_to(boundaries[i - 1] + (boundaries[i] - boundaries[i - 1]) / 2);
    CoordinatorStats stats;
    const auto result = batch_gcd_coordinated(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "mid-record " << i;
    EXPECT_EQ(stats.tasks_resumed, i - 1) << "mid-record " << i;
    EXPECT_EQ(stats.tasks_executed, k * k - (i - 1)) << "mid-record " << i;
  }

  // Duplicate-replay sweep: append a byte-exact copy of each record in
  // turn. A session-layer replay that slips a duplicate past the network
  // dedup lands here, and the journal must commit the task exactly once —
  // resumed count unchanged, folded product unchanged.
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.write(bytes.data() + boundaries[i - 1],
                static_cast<std::streamsize>(boundaries[i] - boundaries[i - 1]));
    }
    CoordinatorStats stats;
    const auto result = batch_gcd_coordinated(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "duplicate of " << i;
    EXPECT_EQ(stats.tasks_resumed, records) << "duplicate of " << i;
    EXPECT_EQ(stats.tasks_executed, k * k - records) << "duplicate of " << i;
  }
}

TEST_F(CoordinatorCheckpoint, MismatchedCorpusInvalidatesJournal) {
  const auto moduli = make_moduli(304, 16);
  auto config = fast_config(3, 2);
  config.checkpoint_path = path_;
  config.halt_after_tasks = 4;
  EXPECT_THROW(batch_gcd_coordinated(moduli, config), CoordinatorInterrupted);

  // Different corpus, same journal path: nothing may be resumed.
  const auto other = make_moduli(305, 16);
  config.halt_after_tasks = 0;
  CoordinatorStats stats;
  const auto result = batch_gcd_coordinated(other, config, &stats);
  EXPECT_EQ(stats.tasks_resumed, 0u);
  EXPECT_EQ(result.divisors, batch_gcd(other).divisors);
}

// ------------------------------------------------------ Study integration ----

TEST(StudyCoordinator, FaultTolerantStudyMatchesFastPath) {
  core::StudyConfig config;
  config.sim.seed = 9090;
  config.sim.scale = 0.01;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 3;
  config.threads = 2;
  config.cache_path = "";  // fresh simulation both times

  core::Study fast(config);
  fast.run();

  config.fault_tolerant = true;
  config.faults.seed = 31337;
  config.faults.crash_probability = 0.10;
  config.faults.straggle_probability = 0.05;
  config.faults.corrupt_probability = 0.10;
  core::Study tolerant(config);
  tolerant.run();

  ASSERT_EQ(tolerant.factored().size(), fast.factored().size());
  for (std::size_t i = 0; i < fast.factored().size(); ++i) {
    EXPECT_EQ(tolerant.factored()[i].n, fast.factored()[i].n);
    EXPECT_EQ(tolerant.factored()[i].p, fast.factored()[i].p);
    EXPECT_EQ(tolerant.factored()[i].q, fast.factored()[i].q);
  }
  EXPECT_EQ(tolerant.vulnerable().size(), fast.vulnerable().size());
  const auto& stats = tolerant.coordinator_stats();
  EXPECT_EQ(stats.tasks, 9u);
  EXPECT_EQ(stats.tasks_executed, stats.tasks);
  EXPECT_EQ(stats.attempts, stats.tasks + stats.retries);
  // The fast path leaves coordinator telemetry untouched.
  EXPECT_EQ(fast.coordinator_stats().tasks, 0u);
}

}  // namespace
}  // namespace weakkeys::batchgcd

// Failure-injection and randomized property tests across module boundaries.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/distributed.hpp"
#include "cert/certificate.hpp"
#include "core/binary_io.hpp"
#include "core/scan_store.hpp"
#include "core/study.hpp"
#include "netsim/catalog.hpp"
#include "netsim/internet.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/prng.hpp"

namespace weakkeys {
namespace {

// ------------------------------------------------- scan store truncation ----

class StoreTruncation : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Unique per param: parallel ctest runs each instance as its own process
  // in the same directory, so a shared name would collide.
  const std::string path_ =
      "truncation_test_" + std::to_string(GetParam()) + ".tmp";
};

TEST_P(StoreTruncation, TruncatedFilesNeverCrash) {
  // Build one small dataset, save it, then chop the file at a fraction of
  // its length. Loading must return nullopt (or, only for the full file, the
  // dataset) — never throw, never crash.
  netsim::SimConfig sim;
  sim.seed = 11;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.002), sim);
  const auto dataset = net.run(netsim::standard_campaigns());
  const core::StoreKey key{11, 2000, 4, 1};
  core::save_dataset(dataset, key, path_);

  std::ifstream in(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  const int percent = GetParam();
  const std::size_t keep = bytes.size() * static_cast<std::size_t>(percent) / 100;
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
  }

  const auto loaded = core::load_dataset(key, path_);
  if (percent == 100) {
    EXPECT_TRUE(loaded.has_value());
  } else {
    EXPECT_FALSE(loaded.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(CutPoints, StoreTruncation,
                         ::testing::Values(0, 1, 5, 25, 50, 75, 95, 99, 100));

// ---------------------------------------------- factor cache corruption ----

/// StoreTruncation's counterpart for the factor-result cache: a truncated
/// or bit-flipped `*.cache.factors` file must fail the length+CRC footer
/// and fall back to recomputation, never crash, and recompute identically.
class FactorCacheCorruption : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    std::remove(kCachePath.c_str());
    std::remove(kFactorsPath.c_str());
    core::Study study(study_config());
    study.run();
    baseline_factored_ = study.factored().size();
    ASSERT_GT(baseline_factored_, 0u);
    std::ifstream in(kFactorsPath, std::ios::binary);
    pristine_.assign((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_FALSE(pristine_.empty());
  }
  static void TearDownTestSuite() {
    std::remove(kCachePath.c_str());
    std::remove(kFactorsPath.c_str());
  }

  static core::StudyConfig study_config() {
    core::StudyConfig config;
    config.sim.seed = 313;
    config.sim.scale = 0.01;
    config.sim.miller_rabin_rounds = 4;
    config.batch_gcd_subsets = 2;
    config.cache_path = kCachePath;
    return config;
  }

  void write_factors(const std::string& bytes) {
    std::ofstream out(kFactorsPath, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Unique per process: ctest runs each param instance as its own process
  // in a shared working directory, and every process rebuilds this cache in
  // SetUpTestSuite — a shared name lets them corrupt each other mid-run.
  static const std::string kCachePath;
  static const std::string kFactorsPath;
  static std::string pristine_;
  static std::size_t baseline_factored_;
};

const std::string FactorCacheCorruption::kCachePath =
    "factor_corruption_test_" + std::to_string(::getpid()) + ".tmp";
const std::string FactorCacheCorruption::kFactorsPath =
    FactorCacheCorruption::kCachePath + ".factors";
std::string FactorCacheCorruption::pristine_;
std::size_t FactorCacheCorruption::baseline_factored_ = 0;

// Params <= 100 truncate the file to that percentage; 101 flips a bit a
// third of the way in; 102 flips a bit inside the CRC footer.
TEST_P(FactorCacheCorruption, CorruptedCachesRecomputeIdentically) {
  const int param = GetParam();
  if (param <= 100) {
    const std::size_t keep =
        pristine_.size() * static_cast<std::size_t>(param) / 100;
    write_factors(pristine_.substr(0, keep));
  } else {
    const std::size_t offset =
        param == 101 ? pristine_.size() / 3 : pristine_.size() - 2;
    std::string flipped = pristine_;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0x04);
    write_factors(flipped);
  }

  core::Study study(study_config());
  study.run();  // corpus cache hit; factor cache rejected unless intact
  EXPECT_EQ(study.factored().size(), baseline_factored_);
  for (const auto& f : study.factored()) {
    EXPECT_EQ(f.p * f.q, f.n);
  }
}

INSTANTIATE_TEST_SUITE_P(CorruptionModes, FactorCacheCorruption,
                         ::testing::Values(0, 30, 75, 99, 100, 101, 102));

TEST(ChecksumFooter, RoundTripAndTamperDetection) {
  const std::string path = "footer_test.tmp";
  {
    core::BinaryWriter w(path);
    w.str("payload bytes");
    w.u64(12345);
  }
  EXPECT_FALSE(core::verify_checksum_footer(path));  // no footer yet
  core::append_checksum_footer(path);
  EXPECT_TRUE(core::verify_checksum_footer(path));

  // Any flipped bit — payload or footer — must invalidate the file.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string tampered = bytes;
    tampered[i] = static_cast<char>(tampered[i] ^ 0x10);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(tampered.data(), static_cast<std::streamsize>(tampered.size()));
    }
    EXPECT_FALSE(core::verify_checksum_footer(path)) << "byte " << i;
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- certificate fuzzing ----

TEST(CertificateFuzz, CorruptedEncodingsThrowOrParse) {
  rng::PrngRandomSource key_rng(7);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 6;
  const auto key = rsa::generate_key(key_rng, opts);
  cert::DistinguishedName dn;
  dn.add("CN", "fuzz-target");
  dn.add("O", "Fuzz Org");
  const cert::Certificate original = cert::make_self_signed(
      dn, {"a.example"}, {util::Date(2012, 1, 1), util::Date(2020, 1, 1)},
      key, 42);
  const auto encoded = original.encode();

  util::Xoshiro256 rng(99);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    auto corrupted = encoded;
    // 1-4 random byte mutations.
    const int mutations = 1 + static_cast<int>(rng.below(4));
    for (int m = 0; m < mutations; ++m) {
      corrupted[rng.below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    try {
      const auto decoded = cert::Certificate::decode(corrupted);
      ++parsed;  // structurally valid mutation (e.g. flipped key byte)
      (void)decoded.fingerprint_hex();
    } catch (const std::exception&) {
      ++rejected;  // malformed: must be a clean failure, not UB
    }
  }
  EXPECT_EQ(parsed + rejected, 400);
  EXPECT_GT(rejected, 0);  // some mutations must break framing
  EXPECT_GT(parsed, 0);    // and some must survive (payload-only flips)
}

TEST(CertificateFuzz, TruncatedEncodingsRejected) {
  rng::PrngRandomSource key_rng(8);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 6;
  const auto key = rsa::generate_key(key_rng, opts);
  cert::DistinguishedName dn;
  dn.add("CN", "x");
  const cert::Certificate original = cert::make_self_signed(
      dn, {}, {util::Date(2012, 1, 1), util::Date(2020, 1, 1)}, key, 1);
  const auto encoded = original.encode();
  for (std::size_t keep = 0; keep < encoded.size(); keep += 7) {
    const std::vector<std::uint8_t> cut(encoded.begin(),
                                        encoded.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW((void)cert::Certificate::decode(cut), cert::TlvError)
        << "kept " << keep;
  }
}

// --------------------------------------- randomized batch-GCD agreement ----

class BatchGcdRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchGcdRandomized, AllAlgorithmsAgreeOnRandomStructure) {
  util::Xoshiro256 structure(GetParam());
  rng::PrngRandomSource rng(GetParam() * 7 + 1);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.sieve_primes = 128;
  opts.miller_rabin_rounds = 5;

  // Random mixture: healthy keys, shared-prime clusters of random width,
  // occasional duplicates.
  std::vector<bn::BigInt> moduli;
  while (moduli.size() < 70) {
    const double roll = structure.uniform();
    if (roll < 0.6) {
      moduli.push_back(rsa::generate_key(rng, opts).pub.n);
    } else if (roll < 0.9) {
      const bn::BigInt shared = rsa::generate_prime(rng, 64, opts);
      const std::size_t width = 2 + structure.below(4);
      for (std::size_t i = 0; i < width; ++i) {
        moduli.push_back(shared * rsa::generate_prime(rng, 64, opts));
      }
    } else {
      const bn::BigInt dup = rsa::generate_key(rng, opts).pub.n;
      moduli.push_back(dup);
      moduli.push_back(dup);
    }
  }

  const auto reference = batchgcd::naive_pairwise_gcd(moduli);
  EXPECT_EQ(batchgcd::batch_gcd(moduli).divisors, reference.divisors);
  const std::size_t k = 1 + structure.below(9);
  EXPECT_EQ(batchgcd::batch_gcd_distributed(moduli, k, nullptr).divisors,
            reference.divisors)
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchGcdRandomized,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------------------ modular edges ----

TEST(ModularEdges, ModPowDegenerateInputs) {
  using bn::BigInt;
  EXPECT_EQ(bn::mod_pow(BigInt(5), BigInt(3), BigInt(1)), BigInt(0));
  EXPECT_EQ(bn::mod_pow(BigInt(0), BigInt(0), BigInt(7)), BigInt(1));  // 0^0 = 1
  EXPECT_EQ(bn::mod_pow(BigInt(-3), BigInt(2), BigInt(7)), BigInt(2));
  // (-3 mod 7) = 4; 4^3 = 64 = 1 (mod 7).
  EXPECT_EQ(bn::mod_pow(BigInt(-3), BigInt(3), BigInt(7)), BigInt(1));
  EXPECT_THROW(bn::mod_pow(BigInt(2), BigInt(-1), BigInt(7)), std::domain_error);
  EXPECT_THROW(bn::mod_pow(BigInt(2), BigInt(3), BigInt(0)), std::domain_error);
  EXPECT_THROW(bn::mod_pow(BigInt(2), BigInt(3), BigInt(-5)), std::domain_error);
}

TEST(ModularEdges, DivModEqualOperands) {
  using bn::BigInt;
  const auto [q, r] = BigInt::divmod(BigInt(17), BigInt(17));
  EXPECT_EQ(q, BigInt(1));
  EXPECT_EQ(r, BigInt(0));
  const auto [q2, r2] = BigInt::divmod(BigInt(16), BigInt(17));
  EXPECT_EQ(q2, BigInt(0));
  EXPECT_EQ(r2, BigInt(16));
}

}  // namespace
}  // namespace weakkeys

#include <gtest/gtest.h>

#include <set>

#include "netsim/catalog.hpp"
#include "netsim/device.hpp"
#include "netsim/internet.hpp"
#include "netsim/ip_allocator.hpp"
#include "netsim/ipv4.hpp"

namespace weakkeys::netsim {
namespace {

DeviceModel tiny_flawed_model() {
  DeviceModel m;
  m.vendor = "TestVendor";
  m.model = "TM-1";
  m.flawed_rng = rng::RngFlawModel{.boot_entropy_bits = 2,
                                   .divergence_entropy_bits = 40};
  m.flawed_from = util::Date(2000, 1, 1);
  m.initial_count = 12;
  m.deploy_per_month = 0.5;
  return m;
}

// --------------------------------------------------------------- Ipv4 ----

TEST(Ipv4, FormatsDottedQuad) {
  EXPECT_EQ(Ipv4(192, 168, 1, 254).to_string(), "192.168.1.254");
  EXPECT_EQ(Ipv4(0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4(0xffffffff).to_string(), "255.255.255.255");
}

TEST(Ipv4, OrderingAndHash) {
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(2, 0, 0, 1));
  const std::hash<Ipv4> h;
  EXPECT_EQ(h(Ipv4(7)), h(Ipv4(7)));
}

// -------------------------------------------------------- IpAllocator ----

TEST(IpAllocator, LiveAddressesNeverCollide) {
  IpAllocator alloc(1, 0.9);
  std::set<Ipv4> live;
  for (int i = 0; i < 500; ++i) {
    const Ipv4 ip = alloc.allocate();
    EXPECT_TRUE(live.insert(ip).second) << "duplicate live lease";
  }
  EXPECT_EQ(alloc.live_count(), 500u);
}

TEST(IpAllocator, ReleasedAddressesGetReused) {
  IpAllocator alloc(2, 1.0);  // always reuse when possible
  const Ipv4 first = alloc.allocate();
  alloc.release(first);
  EXPECT_EQ(alloc.allocate(), first);
}

TEST(IpAllocator, ZeroReuseAlwaysFresh) {
  IpAllocator alloc(3, 0.0);
  const Ipv4 first = alloc.allocate();
  alloc.release(first);
  std::set<Ipv4> seen;
  for (int i = 0; i < 50; ++i) seen.insert(alloc.allocate());
  EXPECT_FALSE(seen.contains(first));
  EXPECT_EQ(alloc.free_pool_size(), 1u);
}

TEST(IpAllocator, ReuseMixesFreshAndRecycled) {
  IpAllocator alloc(4, 0.5);
  std::vector<Ipv4> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(alloc.allocate());
  for (const auto& ip : batch) alloc.release(ip);
  std::set<Ipv4> old(batch.begin(), batch.end());
  int reused = 0;
  for (int i = 0; i < 100; ++i) {
    if (old.contains(alloc.allocate())) ++reused;
  }
  EXPECT_GT(reused, 20);   // reuse happens...
  EXPECT_LT(reused, 80);   // ...but not always
}

TEST(IpAllocator, AddressesAvoidReservedPrefixes) {
  IpAllocator alloc(5, 0.0);
  for (int i = 0; i < 300; ++i) {
    const std::uint32_t top = alloc.allocate().value() >> 24;
    EXPECT_NE(top, 0u);
    EXPECT_NE(top, 10u);
    EXPECT_NE(top, 127u);
    EXPECT_LT(top, 224u);
  }
}

// -------------------------------------------------------- DeviceModel ----

TEST(DeviceModel, FlawWindow) {
  DeviceModel m = tiny_flawed_model();
  m.flawed_from = util::Date(2010, 1, 1);
  m.flawed_until = util::Date(2012, 7, 1);
  EXPECT_FALSE(m.flawed_at(util::Date(2009, 12, 31)));
  EXPECT_TRUE(m.flawed_at(util::Date(2010, 1, 1)));
  EXPECT_TRUE(m.flawed_at(util::Date(2012, 6, 30)));
  EXPECT_FALSE(m.flawed_at(util::Date(2012, 7, 1)));

  m.flawed_until.reset();
  EXPECT_TRUE(m.flawed_at(util::Date(2030, 1, 1)));  // never fixed
  m.flawed_from.reset();
  EXPECT_FALSE(m.flawed_at(util::Date(2011, 1, 1)));  // never flawed
}

TEST(DeviceModel, PoolTagDefaultsAndOverride) {
  DeviceModel m = tiny_flawed_model();
  EXPECT_EQ(m.pool_tag(), "TestVendor/TM-1");
  m.shared_pool_tag = "shared/foo";
  EXPECT_EQ(m.pool_tag(), "shared/foo");
}

// ------------------------------------------------------- DeviceFactory ----

TEST(DeviceFactory, CreatesWorkingDevice) {
  const DeviceModel model = tiny_flawed_model();
  DeviceFactory factory(1, 8);
  const Device device =
      factory.create(model, util::Date(2011, 5, 1), util::Date(2011, 5, 1));
  EXPECT_TRUE(device.alive);
  EXPECT_TRUE(device.flawed);
  EXPECT_TRUE(device.https_key.is_consistent());
  ASSERT_TRUE(device.https_cert);
  EXPECT_EQ(device.https_cert->key.n, device.https_key.pub.n);
  EXPECT_TRUE(device.https_cert->is_self_signed());
  EXPECT_TRUE(device.https_cert->verify_signature(device.https_cert->key));
}

TEST(DeviceFactory, RegenerateChangesKeyAndCert) {
  const DeviceModel model = tiny_flawed_model();
  DeviceFactory factory(2, 8);
  Device device =
      factory.create(model, util::Date(2011, 5, 1), util::Date(2011, 5, 1));
  const auto old_n = device.https_key.pub.n;
  const auto old_serial = device.https_cert->serial;
  factory.regenerate(device, util::Date(2013, 1, 1));
  EXPECT_NE(device.https_key.pub.n, old_n);
  EXPECT_NE(device.https_cert->serial, old_serial);
}

TEST(DeviceFactory, BootCollisionsProduceSharedPrimes) {
  // With 2 boot-entropy bits, a dozen devices must collide.
  const DeviceModel model = tiny_flawed_model();
  DeviceFactory factory(3, 8);
  std::vector<Device> devices;
  for (int i = 0; i < 12; ++i) {
    devices.push_back(
        factory.create(model, util::Date(2011, 5, 1), util::Date(2011, 5, 1)));
  }
  bool found_shared = false;
  for (std::size_t i = 0; i < devices.size() && !found_shared; ++i) {
    for (std::size_t j = i + 1; j < devices.size(); ++j) {
      const auto g = bn::gcd(devices[i].https_key.pub.n,
                             devices[j].https_key.pub.n);
      if (g > bn::BigInt(1) && g < devices[i].https_key.pub.n) {
        found_shared = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST(DeviceFactory, HealthyModelNeverShares) {
  DeviceModel model = tiny_flawed_model();
  model.flawed_from.reset();  // healthy
  DeviceFactory factory(4, 8);
  std::vector<Device> devices;
  for (int i = 0; i < 10; ++i) {
    devices.push_back(
        factory.create(model, util::Date(2011, 5, 1), util::Date(2011, 5, 1)));
  }
  for (std::size_t i = 0; i < devices.size(); ++i) {
    for (std::size_t j = i + 1; j < devices.size(); ++j) {
      EXPECT_EQ(bn::gcd(devices[i].https_key.pub.n, devices[j].https_key.pub.n),
                bn::BigInt(1));
    }
  }
}

TEST(DeviceFactory, SubjectStylesRender) {
  DeviceFactory factory(5, 8);
  const util::Date d(2011, 5, 1);

  DeviceModel juniper = tiny_flawed_model();
  juniper.subject_style = SubjectStyle::kSystemGenerated;
  EXPECT_EQ(factory.create(juniper, d, d).https_cert->subject.get("CN"),
            "system generated");

  DeviceModel mcafee = tiny_flawed_model();
  mcafee.subject_style = SubjectStyle::kDefaultNames;
  const Device md = factory.create(mcafee, d, d);
  EXPECT_EQ(md.https_cert->subject.get("CN"), "Default Common Name");
  EXPECT_EQ(md.https_cert->subject.get("O"), "Default Organization");

  DeviceModel fritz = tiny_flawed_model();
  fritz.subject_style = SubjectStyle::kFritzDomains;
  const Device fd = factory.create(fritz, d, d);
  EXPECT_NE(fd.https_cert->subject.get("CN").find(".myfritz.net"),
            std::string::npos);
  EXPECT_FALSE(fd.https_cert->san_dns.empty());

  DeviceModel ip = tiny_flawed_model();
  ip.subject_style = SubjectStyle::kIpOctets;
  const Device ipd = factory.create(ip, d, d);
  EXPECT_EQ(ipd.https_cert->subject.get("CN"), ipd.ip.to_string());
}

TEST(DeviceFactory, IbmModelStaysInClique) {
  DeviceModel ibm = tiny_flawed_model();
  ibm.uses_ibm_nine_primes = true;
  DeviceFactory factory(6, 8);
  const auto& pool = factory.ibm_pool(ibm.key_bits);
  const auto possible = pool.possible_moduli();
  std::set<std::string> seen;
  for (int i = 0; i < 15; ++i) {
    const Device d =
        factory.create(ibm, util::Date(2011, 1, 1), util::Date(2011, 1, 1));
    EXPECT_TRUE(std::find(possible.begin(), possible.end(),
                          d.https_key.pub.n) != possible.end());
    seen.insert(d.https_key.pub.n.to_hex());
  }
  EXPECT_GT(seen.size(), 3u);  // draws spread over the clique
}

TEST(DeviceFactory, FixedIbmKeyIsConstant) {
  DeviceModel siemens = tiny_flawed_model();
  siemens.uses_ibm_nine_primes = true;
  siemens.fixed_ibm_key = true;
  DeviceFactory factory(7, 8);
  const Device a =
      factory.create(siemens, util::Date(2013, 2, 1), util::Date(2013, 2, 1));
  const Device b =
      factory.create(siemens, util::Date(2013, 3, 1), util::Date(2013, 3, 1));
  EXPECT_EQ(a.https_key.pub.n, b.https_key.pub.n);
  EXPECT_NE(a.https_cert->serial, b.https_cert->serial);
}

TEST(DeviceFactory, RimonVariantSwapsOnlyKey) {
  DeviceModel m = tiny_flawed_model();
  DeviceFactory factory(8, 8);
  Device device =
      factory.create(m, util::Date(2011, 1, 1), util::Date(2011, 1, 1));
  const auto variant = factory.rimon_variant(device);
  EXPECT_EQ(variant->subject, device.https_cert->subject);
  EXPECT_EQ(variant->serial, device.https_cert->serial);
  EXPECT_EQ(variant->signature, device.https_cert->signature);
  EXPECT_NE(variant->key.n, device.https_cert->key.n);
  EXPECT_FALSE(variant->verify_signature(variant->key));  // broken, as observed
  // Cached: second call returns the same object.
  EXPECT_EQ(factory.rimon_variant(device).get(), variant.get());
}

TEST(DeviceFactory, SshFirstDeviceHasSshCert) {
  DeviceModel m = tiny_flawed_model();
  m.ssh_frac = 1.0;
  DeviceFactory factory(9, 8);
  const Device d =
      factory.create(m, util::Date(2011, 1, 1), util::Date(2011, 1, 1));
  ASSERT_TRUE(d.ssh_key.has_value());
  ASSERT_TRUE(d.ssh_cert);
  EXPECT_EQ(d.ssh_cert->key.n, d.ssh_key->pub.n);
  EXPECT_NE(d.ssh_key->pub.n, d.https_key.pub.n);
}

// ------------------------------------------------------------ catalog ----

TEST(Catalog, CoversThePapersVendors) {
  const auto models = standard_models();
  std::set<std::string> vendors;
  for (const auto& m : models) vendors.insert(m.vendor);
  for (const char* expected :
       {"Juniper", "Innominate", "IBM", "Cisco", "Hewlett-Packard", "Siemens",
        "Thomson", "Fritz!Box", "Linksys", "Fortinet", "ZyXEL", "Dell",
        "Xerox", "Kronos", "McAfee", "TP-LINK", "Huawei", "D-Link", "ADTRAN",
        "Sangfor", "Schmid Telecom"}) {
    EXPECT_TRUE(vendors.contains(expected)) << expected;
  }
}

TEST(Catalog, ScaleAppliesToCountsAndBootBits) {
  const auto full = standard_models(1.0);
  const auto quarter = standard_models(0.25);
  ASSERT_EQ(full.size(), quarter.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(quarter[i].initial_count, full[i].initial_count * 0.25, 1e-9);
    if (full[i].flawed_from) {
      EXPECT_EQ(quarter[i].flawed_rng.boot_entropy_bits,
                std::max(1, full[i].flawed_rng.boot_entropy_bits - 2));
    }
  }
}

TEST(Catalog, NotificationsMatchTable2Counts) {
  const auto notes = standard_notifications();
  int advisories = 0, notified_2012 = 0;
  for (const auto& n : notes) {
    if (n.response == ResponseClass::kPublicAdvisory) ++advisories;
    if (n.notified_2012) ++notified_2012;
  }
  EXPECT_EQ(advisories, 5);      // "Only five released a public advisory"
  EXPECT_EQ(notified_2012, 37);  // Table 2: 37 vendors notified
}

TEST(Catalog, CampaignsSpanTheStudy) {
  const auto campaigns = standard_campaigns();
  ASSERT_FALSE(campaigns.empty());
  util::Date first = campaigns.front().first, last = campaigns.front().last;
  for (const auto& c : campaigns) {
    first = std::min(first, c.first);
    last = std::max(last, c.last);
    EXPECT_GT(c.coverage, 0.5);
    EXPECT_LE(c.coverage, 1.0);
  }
  EXPECT_EQ(first, util::Date(2010, 7, 15));
  EXPECT_GE(last, util::Date(2016, 4, 1));
}

TEST(Catalog, CiscoEolAnnouncementPrecedesEndOfSale) {
  for (const auto& eol : cisco_eol_dates()) {
    EXPECT_LT(eol.announced, eol.end_of_sale) << eol.model;
  }
}

// ----------------------------------------------------------- Internet ----

class InternetSim : public ::testing::Test {
 protected:
  static ScanDataset run_tiny() {
    std::vector<DeviceModel> models;
    DeviceModel flawed = tiny_flawed_model();
    flawed.initial_count = 20;
    flawed.heartbleed_crash = true;
    flawed.heartbleed_offline_frac = 0.5;
    models.push_back(flawed);

    DeviceModel healthy = tiny_flawed_model();
    healthy.vendor = "Healthy";
    healthy.flawed_from.reset();
    healthy.initial_count = 20;
    models.push_back(healthy);

    SimConfig config;
    config.seed = 99;
    config.miller_rabin_rounds = 6;
    Internet net(models, config);
    return net.run(standard_campaigns());
  }
};

TEST_F(InternetSim, ProducesDateOrderedSnapshots) {
  const ScanDataset ds = run_tiny();
  ASSERT_FALSE(ds.snapshots.empty());
  for (std::size_t i = 1; i < ds.snapshots.size(); ++i) {
    EXPECT_LE(ds.snapshots[i - 1].date, ds.snapshots[i].date);
  }
}

TEST_F(InternetSim, HeartbleedCrashShrinksPopulation) {
  const ScanDataset ds = run_tiny();
  // Compare scans straddling April 2014 for the crash-prone model.
  std::size_t before = 0, after = 0;
  for (const auto& snap : ds.snapshots) {
    if (snap.protocol != Protocol::kHttps) continue;
    if (snap.date <= util::Date(2014, 3, 31)) before = snap.records.size();
    if (after == 0 && snap.date >= util::Date(2014, 5, 1))
      after = snap.records.size();
  }
  ASSERT_GT(before, 0u);
  ASSERT_GT(after, 0u);
  EXPECT_LT(after, before);  // half of one model went dark
}

TEST_F(InternetSim, DeterministicBySeed) {
  const ScanDataset a = run_tiny();
  const ScanDataset b = run_tiny();
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  EXPECT_EQ(a.total_host_records(), b.total_host_records());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    ASSERT_EQ(a.snapshots[i].records.size(), b.snapshots[i].records.size());
    for (std::size_t j = 0; j < a.snapshots[i].records.size(); ++j) {
      EXPECT_EQ(a.snapshots[i].records[j].cert().key.n,
                b.snapshots[i].records[j].cert().key.n);
    }
  }
}

TEST_F(InternetSim, ProtocolScansCoverTheirPopulations) {
  std::vector<DeviceModel> models;
  DeviceModel https = tiny_flawed_model();
  https.initial_count = 15;
  models.push_back(https);
  DeviceModel ssh = tiny_flawed_model();
  ssh.vendor = "SshOnly";
  ssh.protocol = Protocol::kSsh;
  ssh.initial_count = 10;
  models.push_back(ssh);
  DeviceModel mail = tiny_flawed_model();
  mail.vendor = "MailCo";
  mail.protocol = Protocol::kImaps;
  mail.initial_count = 8;
  models.push_back(mail);

  SimConfig config;
  config.seed = 77;
  config.miller_rabin_rounds = 5;
  Internet net(models, config);
  const ScanDataset ds = net.run(standard_campaigns());

  std::size_t https_records = 0, ssh_records = 0, imaps_records = 0;
  for (const auto& snap : ds.snapshots) {
    for (const auto& rec : snap.records) {
      switch (rec.protocol) {
        case Protocol::kHttps: ++https_records; break;
        case Protocol::kSsh: ++ssh_records; break;
        case Protocol::kImaps: ++imaps_records; break;
        default: break;
      }
    }
  }
  EXPECT_GT(https_records, 0u);
  EXPECT_GT(ssh_records, 0u);    // the single Censys SSH scan
  EXPECT_GT(imaps_records, 0u);  // the single Censys IMAPS scan
  // SSH-only hosts never appear in HTTPS scans.
  for (const auto& snap : ds.snapshots) {
    if (snap.protocol != Protocol::kHttps) continue;
    for (const auto& rec : snap.records) {
      EXPECT_NE(rec.cert().subject.get("CN").substr(0, 4), "ssh-");
    }
  }
}

TEST_F(InternetSim, Rapid7SurfacesIntermediates) {
  std::vector<DeviceModel> models;
  DeviceModel web = tiny_flawed_model();
  web.flawed_from.reset();
  web.ca_issued = true;
  web.initial_count = 60;
  models.push_back(web);

  SimConfig config;
  config.seed = 88;
  config.miller_rabin_rounds = 5;
  config.rapid7_intermediate_rate = 0.5;
  Internet net(models, config);
  const ScanDataset ds = net.run(standard_campaigns());

  std::size_t rapid7_intermediates = 0, other_intermediates = 0;
  for (const auto& snap : ds.snapshots) {
    for (const auto& rec : snap.records) {
      const bool is_ca =
          rec.cert().subject.get("CN").rfind("Intermediate CA", 0) == 0;
      if (!is_ca) continue;
      if (snap.source == "Rapid7") {
        ++rapid7_intermediates;
      } else {
        ++other_intermediates;
      }
    }
  }
  EXPECT_GT(rapid7_intermediates, 0u);   // the Section 3.1 quirk
  EXPECT_EQ(other_intermediates, 0u);    // other sources exclude issuers
}

TEST_F(InternetSim, DistinctModuliMatchesKeyCount) {
  const ScanDataset ds = run_tiny();
  // 40 initial devices plus ~70 deployed over the 71 months, plus
  // regenerations; distinct moduli in a sane band.
  const auto moduli = ds.distinct_moduli();
  EXPECT_GE(moduli.size(), 60u);
  EXPECT_LE(moduli.size(), 180u);
  EXPECT_GE(ds.distinct_certificates(), moduli.size());
}

// ----------------------------------------------------------- Protocol ----

TEST(Protocol, ToStringIsTotal) {
  EXPECT_EQ(to_string(Protocol::kHttps), "HTTPS");
  EXPECT_EQ(to_string(Protocol::kSmtps), "SMTPS");
  // Out-of-enum values (cast from corrupted serialized bytes) map to a
  // diagnostic string instead of throwing mid-study.
  EXPECT_EQ(to_string(static_cast<Protocol>(99)), "unknown-protocol(99)");
  EXPECT_EQ(to_string(static_cast<Protocol>(kProtocolCount)),
            "unknown-protocol(" + std::to_string(kProtocolCount) + ")");
}

TEST(Protocol, FromIndexIsTotalInverse) {
  for (std::uint32_t i = 0; i < kProtocolCount; ++i) {
    const auto p = protocol_from_index(i);
    ASSERT_TRUE(p.has_value()) << i;
    EXPECT_EQ(static_cast<std::uint32_t>(*p), i);
    EXPECT_EQ(to_string(*p).find("unknown"), std::string::npos);
  }
  EXPECT_FALSE(protocol_from_index(kProtocolCount).has_value());
  EXPECT_FALSE(protocol_from_index(0xffffffffu).has_value());
}

}  // namespace
}  // namespace weakkeys::netsim

#include <gtest/gtest.h>

#include "fingerprint/divisor_class.hpp"
#include "fingerprint/ibm_clique.hpp"
#include "fingerprint/mitm_detector.hpp"
#include "fingerprint/openssl_fingerprint.hpp"
#include "fingerprint/prime_pools.hpp"
#include "fingerprint/subject_rules.hpp"
#include "rng/prng_source.hpp"
#include "rsa/ibm_nine_primes.hpp"
#include "rsa/keygen.hpp"

namespace weakkeys::fingerprint {
namespace {

using bn::BigInt;

cert::Certificate cert_with_subject(
    std::initializer_list<std::pair<const char*, const char*>> attrs,
    std::vector<std::string> sans = {}) {
  cert::Certificate c;
  for (const auto& [t, v] : attrs) c.subject.add(t, v);
  c.issuer = c.subject;
  c.san_dns = std::move(sans);
  c.key.n = BigInt(35);
  c.key.e = BigInt(65537);
  return c;
}

// ------------------------------------------------------- SubjectRules ----

TEST(SubjectRules, JuniperSystemGenerated) {
  const auto rules = SubjectRules::standard();
  const auto label =
      rules.classify(cert_with_subject({{"CN", "system generated"}}));
  ASSERT_TRUE(label);
  EXPECT_EQ(label->vendor, "Juniper");
}

TEST(SubjectRules, OrganizationWithModel) {
  const auto rules = SubjectRules::standard();
  const auto label = rules.classify(
      cert_with_subject({{"CN", "RV082"}, {"OU", "RV082"}, {"O", "Cisco"}}));
  ASSERT_TRUE(label);
  EXPECT_EQ(label->vendor, "Cisco");
  EXPECT_EQ(label->model, "RV082");
}

TEST(SubjectRules, McAfeeNeedsBanner) {
  const auto rules = SubjectRules::standard();
  const auto plain = cert_with_subject({{"CN", "Default Common Name"},
                                        {"OU", "Default Unit"},
                                        {"O", "Default Organization"}});
  EXPECT_FALSE(rules.classify(plain, ""));
  const auto label = rules.classify(plain, "SnapGear Management Console");
  ASSERT_TRUE(label);
  EXPECT_EQ(label->vendor, "McAfee");
  EXPECT_EQ(label->method, "banner");
}

TEST(SubjectRules, FritzboxDomainsAndSans) {
  const auto rules = SubjectRules::standard();
  const auto by_cn =
      rules.classify(cert_with_subject({{"CN", "a1b2c3.myfritz.net"}}));
  ASSERT_TRUE(by_cn);
  EXPECT_EQ(by_cn->vendor, "Fritz!Box");

  const auto by_san = rules.classify(
      cert_with_subject({{"CN", "something else"}}, {"fritz.box"}));
  ASSERT_TRUE(by_san);
  EXPECT_EQ(by_san->vendor, "Fritz!Box");
  EXPECT_EQ(by_san->method, "san");
}

TEST(SubjectRules, DellImagingGroup) {
  const auto rules = SubjectRules::standard();
  const auto label = rules.classify(cert_with_subject(
      {{"CN", "printer-1"}, {"OU", "Dell Imaging Group"}, {"O", "Dell Inc."}}));
  ASSERT_TRUE(label);
  EXPECT_EQ(label->vendor, "Dell");
}

TEST(SubjectRules, PlaceholderOrgsUnlabeled) {
  const auto rules = SubjectRules::standard();
  EXPECT_FALSE(rules.classify(
      cert_with_subject({{"CN", "x"}, {"O", "Customer Organization 17"}})));
  EXPECT_FALSE(rules.classify(
      cert_with_subject({{"CN", "x"}, {"O", "Default Organization"}})));
  EXPECT_FALSE(
      rules.classify(cert_with_subject({{"CN", "192.168.17.4"}})));
}

TEST(SubjectRules, BareIpDetection) {
  EXPECT_TRUE(subject_is_bare_ip(cert_with_subject({{"CN", "10.1.2.3"}})));
  EXPECT_FALSE(subject_is_bare_ip(cert_with_subject({{"CN", "host.name"}})));
  EXPECT_FALSE(subject_is_bare_ip(
      cert_with_subject({{"CN", "10.1.2.3"}, {"O", "Org"}})));
}

// ----------------------------------------------- OpenSSL fingerprint ----

TEST(OpensslFingerprint, DetectsGenerationStyle) {
  rng::PrngRandomSource rng(1);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 8;

  opts.style = rsa::PrimeStyle::kOpenSsl;
  std::vector<BigInt> openssl_primes;
  for (int i = 0; i < 4; ++i) {
    openssl_primes.push_back(rsa::generate_prime(rng, 128, opts));
  }
  const auto openssl_verdict = classify_openssl(openssl_primes);
  EXPECT_EQ(openssl_verdict.cls, ImplementationClass::kLikelyOpenSsl);
  EXPECT_EQ(openssl_verdict.factors_satisfying, 4u);

  opts.style = rsa::PrimeStyle::kPlain;
  std::vector<BigInt> plain_primes;
  for (int i = 0; i < 24; ++i) {
    plain_primes.push_back(rsa::generate_prime(rng, 128, opts));
  }
  const auto plain_verdict = classify_openssl(plain_primes);
  EXPECT_EQ(plain_verdict.cls, ImplementationClass::kNotOpenSsl);
  // ~7.5% of random primes satisfy the property by chance.
  EXPECT_LT(plain_verdict.factors_satisfying, 12u);
}

TEST(OpensslFingerprint, InsufficientData) {
  EXPECT_EQ(classify_openssl({}).cls, ImplementationClass::kInsufficientData);
}

TEST(OpensslFingerprint, KnownSmallValues) {
  // 23 - 1 = 22 = 2*11: divisible by 2 => p % 2 == 1 fails the test... 23%2=1.
  EXPECT_FALSE(satisfies_openssl_fingerprint(BigInt(23), 16));
  // Large prime p where p-1 = 2*q with q prime ("safe prime"): satisfies for
  // any sieve bound below q. 1000000007 - 1 = 2 * 500000003 (500000003 prime)
  // ... but p % 2 == 1 always for odd p. The property checks p % q_i != 1,
  // and p odd => p % 2 == 1, so the first sieve prime (2) always "fails"?
  // No: OpenSSL's test skips 2 conceptually since p-1 is always even; our
  // implementation must therefore start at 3. Verified here:
  EXPECT_TRUE(satisfies_openssl_fingerprint(
      BigInt(std::uint64_t{1000000007ULL}), 4));
}

// --------------------------------------------------------- divisors ----

TEST(DivisorClass, SharedPrimeDetected) {
  rng::PrngRandomSource rng(2);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  const BigInt p = rsa::generate_prime(rng, 64, opts);
  const BigInt q = rsa::generate_prime(rng, 64, opts);
  const auto verdict = classify_divisor(p * q, p);
  EXPECT_EQ(verdict.cls, DivisorClass::kSharedPrime);
}

TEST(DivisorClass, FullModulusDetected) {
  const BigInt n(35);
  EXPECT_EQ(classify_divisor(n, n).cls, DivisorClass::kFullModulus);
}

TEST(DivisorClass, SmoothDivisorFlagsBitError) {
  const BigInt smooth = BigInt(2 * 3 * 5 * 7 * 11) * BigInt(13 * 17 * 19);
  const BigInt n = smooth * BigInt(1) + BigInt(0);
  const auto verdict = classify_divisor(n * BigInt(101), smooth);
  EXPECT_EQ(verdict.cls, DivisorClass::kSmoothBitError);
  EXPECT_EQ(verdict.smooth_part, smooth);
}

TEST(DivisorClass, TrivialDivisorIsOther) {
  EXPECT_EQ(classify_divisor(BigInt(35), BigInt(1)).cls, DivisorClass::kOther);
}

TEST(SmoothSplit, SeparatesSmoothPart) {
  const BigInt big_prime = BigInt::from_decimal("1000000000000000003");
  const BigInt x = BigInt(2 * 2 * 3 * 25) * big_prime;
  const auto split = smooth_split(x, 1000);
  EXPECT_EQ(split.smooth, BigInt(300));
  EXPECT_EQ(split.cofactor, big_prime);
}

TEST(SmoothSplit, FullySmoothValue) {
  const auto split = smooth_split(BigInt(720), 10);
  EXPECT_EQ(split.smooth, BigInt(720));
  EXPECT_EQ(split.cofactor, BigInt(1));
}

TEST(WellFormedness, ChecksNecessaryConditions) {
  EXPECT_FALSE(plausibly_well_formed(BigInt(4)));            // too small/even
  EXPECT_FALSE(plausibly_well_formed(BigInt(3 * 1000003)));  // small factor
  const BigInt p = BigInt::from_decimal("1000000000000000003");
  const BigInt q = BigInt::from_decimal("999999999999999989");
  EXPECT_TRUE(plausibly_well_formed(p * q));
}

// -------------------------------------------------------- PrimePools ----

TEST(PrimePools, ExtrapolatesUniqueOwner) {
  PrimePools pools;
  const BigInt p1(101), p2(103), q(9973);
  pools.add("VendorA", p1);
  pools.add("VendorA", p2);
  EXPECT_EQ(pools.extrapolate(p1, q), "VendorA");
  EXPECT_EQ(pools.extrapolate(q, p2), "VendorA");
  EXPECT_EQ(pools.extrapolate(q, q), "");  // unknown prime
  EXPECT_EQ(pools.pool_size("VendorA"), 2u);
  EXPECT_EQ(pools.pool_size("nobody"), 0u);
}

TEST(PrimePools, AmbiguousOwnersRejected) {
  PrimePools pools;
  pools.add("VendorA", BigInt(101));
  pools.add("VendorB", BigInt(103));
  EXPECT_EQ(pools.extrapolate(BigInt(101), BigInt(103)), "");
}

TEST(PrimePools, OverlapsReported) {
  PrimePools pools;
  pools.add("Dell", BigInt(101));
  pools.add("Xerox", BigInt(101));
  pools.add("Xerox", BigInt(103));
  const auto overlaps = pools.overlaps();
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_EQ(overlaps[0].vendor_a, "Dell");
  EXPECT_EQ(overlaps[0].vendor_b, "Xerox");
  EXPECT_EQ(overlaps[0].shared_primes, 1u);
}

// --------------------------------------------------------- IBM clique ----

TEST(IbmClique, DetectsDegenerateGenerator) {
  const rsa::IbmNinePrimeGenerator gen(128, 7);
  std::vector<FactoredModulus> factored;
  const auto& primes = gen.primes();
  for (int i = 0; i < 9; ++i) {
    for (int j = i + 1; j < 9; ++j) {
      factored.push_back({primes[static_cast<std::size_t>(i)],
                          primes[static_cast<std::size_t>(j)],
                          primes[static_cast<std::size_t>(i)] *
                              primes[static_cast<std::size_t>(j)]});
    }
  }
  const auto cliques = find_degenerate_cliques(factored);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].primes.size(), 9u);
  EXPECT_EQ(cliques[0].moduli.size(), 36u);
  EXPECT_DOUBLE_EQ(cliques[0].density, 1.0);
}

TEST(IbmClique, StarsAreNotCliques) {
  // Five moduli all sharing one prime: density 2/(m+1), well under 0.75.
  rng::PrngRandomSource rng(3);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  const BigInt shared = rsa::generate_prime(rng, 64, opts);
  std::vector<FactoredModulus> factored;
  for (int i = 0; i < 5; ++i) {
    const BigInt q = rsa::generate_prime(rng, 64, opts);
    factored.push_back({shared, q, shared * q});
  }
  EXPECT_TRUE(find_degenerate_cliques(factored).empty());
}

TEST(IbmClique, DuplicateModuliCountedOnce) {
  const rsa::IbmNinePrimeGenerator gen(128, 7);
  const auto& p = gen.primes();
  std::vector<FactoredModulus> factored;
  for (int rep = 0; rep < 3; ++rep) {
    for (int i = 0; i < 9; ++i) {
      for (int j = i + 1; j < 9; ++j) {
        factored.push_back({p[static_cast<std::size_t>(i)],
                            p[static_cast<std::size_t>(j)],
                            p[static_cast<std::size_t>(i)] *
                                p[static_cast<std::size_t>(j)]});
      }
    }
  }
  const auto cliques = find_degenerate_cliques(factored);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].moduli.size(), 36u);
}

// ------------------------------------------------------ MITM detector ----

TEST(MitmDetector, FlagsFixedKeyAcrossManyIps) {
  netsim::ScanDataset dataset;
  netsim::ScanSnapshot snap;
  snap.date = util::Date(2015, 1, 15);
  snap.source = "Censys";
  snap.protocol = netsim::Protocol::kHttps;

  const BigInt fixed_n(std::uint64_t{0x1234567887654321ULL});
  for (int i = 0; i < 12; ++i) {
    auto c = std::make_shared<cert::Certificate>();
    c->subject.add("CN", "device-" + std::to_string(i));
    c->issuer = c->subject;
    c->key.n = fixed_n;
    c->key.e = BigInt(65537);
    snap.records.push_back(netsim::HostRecord{
        snap.date, snap.source, netsim::Ipv4(static_cast<std::uint32_t>(0x0a000000 + i)),
        snap.protocol, std::move(c), "", {}});
  }
  // One ordinary host, unique key.
  auto ordinary = std::make_shared<cert::Certificate>();
  ordinary->subject.add("CN", "unique");
  ordinary->issuer = ordinary->subject;
  ordinary->key.n = BigInt(std::uint64_t{0x9999999999ULL});
  ordinary->key.e = BigInt(65537);
  snap.records.push_back(netsim::HostRecord{snap.date, snap.source,
                                            netsim::Ipv4(0x0b000001),
                                            snap.protocol, ordinary, "", {}});
  dataset.snapshots.push_back(std::move(snap));

  const auto candidates = detect_fixed_key_mitm(dataset, {}, MitmOptions{});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].modulus, fixed_n);
  EXPECT_EQ(candidates[0].distinct_ips, 12u);
  EXPECT_EQ(candidates[0].distinct_subjects, 12u);
  EXPECT_FALSE(candidates[0].ever_factored);
}

TEST(MitmDetector, FactoredCliqueMarked) {
  netsim::ScanDataset dataset;
  netsim::ScanSnapshot snap;
  snap.date = util::Date(2015, 1, 15);
  snap.source = "Censys";
  const BigInt clique_n(std::uint64_t{0xabcdef});
  for (int i = 0; i < 10; ++i) {
    auto c = std::make_shared<cert::Certificate>();
    c->subject.add("CN", "org-" + std::to_string(i));
    c->issuer = c->subject;
    c->key.n = clique_n;
    c->key.e = BigInt(65537);
    snap.records.push_back(netsim::HostRecord{
        snap.date, snap.source, netsim::Ipv4(static_cast<std::uint32_t>(0x0c000000 + i)),
        netsim::Protocol::kHttps, std::move(c), "", {}});
  }
  dataset.snapshots.push_back(std::move(snap));
  const auto candidates =
      detect_fixed_key_mitm(dataset, {clique_n.to_hex()}, MitmOptions{});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].ever_factored);
}

TEST(MitmDetector, SameSubjectEverywhereNotFlagged) {
  // Identical default certificates (same subject) at many IPs: min_subjects
  // keeps them out.
  netsim::ScanDataset dataset;
  netsim::ScanSnapshot snap;
  snap.date = util::Date(2015, 1, 15);
  snap.source = "Censys";
  auto shared_cert = std::make_shared<cert::Certificate>();
  shared_cert->subject.add("CN", "Default Common Name");
  shared_cert->issuer = shared_cert->subject;
  shared_cert->key.n = BigInt(std::uint64_t{0x777777});
  shared_cert->key.e = BigInt(65537);
  for (int i = 0; i < 20; ++i) {
    snap.records.push_back(netsim::HostRecord{
        snap.date, snap.source, netsim::Ipv4(static_cast<std::uint32_t>(0x0d000000 + i)),
        netsim::Protocol::kHttps, shared_cert, "", {}});
  }
  dataset.snapshots.push_back(std::move(snap));
  EXPECT_TRUE(detect_fixed_key_mitm(dataset, {}, MitmOptions{}).empty());
}

}  // namespace
}  // namespace weakkeys::fingerprint

// Unit tests for the live-run monitor stack: histogram quantile estimation,
// rate/ETA derivation (including counter-overflow wrap), the JSONL snapshot
// schema, the Monitor background thread, process self-metrics, the
// exit-flush registry, and the embedded HTTP status server.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "json_lite.hpp"
#include "obs/monitor.hpp"
#include "obs/proc_stats.hpp"
#include "obs/status_server.hpp"
#include "obs/telemetry.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#define WEAKKEYS_TEST_SOCKETS 1
#endif

namespace weakkeys {
namespace {

using obs::MetricsSnapshot;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string temp_path(const std::string& stem) {
  return stem + "_" + std::to_string(::getpid()) + ".tmp";
}

// -- histogram quantiles -----------------------------------------------------

MetricsSnapshot::HistogramValue recorded(
    std::vector<std::uint64_t> bounds,
    const std::vector<std::uint64_t>& samples) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("h", std::move(bounds));
  for (const std::uint64_t v : samples) h.record(v);
  return registry.snapshot().histograms.at("h");
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const auto h = recorded({10, 20}, {});
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(HistogramQuantile, UniformDistributionLandsOnExactQuantiles) {
  // 1..100 into four equal buckets: linear interpolation reproduces the
  // population quantiles exactly.
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 1; v <= 100; ++v) samples.push_back(v);
  const auto h = recorded({25, 50, 75, 100}, samples);
  EXPECT_DOUBLE_EQ(h.p50(), 50.0);
  EXPECT_DOUBLE_EQ(h.p90(), 90.0);
  EXPECT_DOUBLE_EQ(h.p99(), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(HistogramQuantile, InterpolatesWithinASingleBucket) {
  // Ten samples of 7 all land in the 0..10 bucket; the estimator can only
  // interpolate within the bucket: the median estimate is its midpoint.
  const auto h = recorded({10, 20}, std::vector<std::uint64_t>(10, 7));
  EXPECT_DOUBLE_EQ(h.p50(), 5.0);
}

TEST(HistogramQuantile, NeverExceedsObservedMax) {
  // A single sample of 3 in a 0..1000 bucket: interpolation would say 1000
  // for q=1, but no recorded sample exceeded 3.
  const auto h = recorded({1000}, {3});
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  EXPECT_LE(h.p50(), 3.0);
}

TEST(HistogramQuantile, OverflowBucketInterpolatesUpToMax) {
  // 5 below the only bound; 100 and 200 in the overflow bucket whose honest
  // upper edge is the observed max (200).
  const auto h = recorded({10}, {5, 100, 200});
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
  // rank(0.5) = 1.5: half-way through the overflow bucket's first sample,
  // lerped across [10, 200].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0 + 0.25 * 190.0);
}

// -- rate / ETA derivation ---------------------------------------------------

TEST(RateDerivation, RatesFromMonotonicDeltas) {
  EXPECT_DOUBLE_EQ(obs::rate_per_sec(1000, 1'000'000), 1000.0);
  EXPECT_DOUBLE_EQ(obs::rate_per_sec(5, 500'000), 10.0);
  EXPECT_DOUBLE_EQ(obs::rate_per_sec(0, 1'000'000), 0.0);
  // An empty interval yields no rate rather than a division by zero.
  EXPECT_DOUBLE_EQ(obs::rate_per_sec(42, 0), 0.0);
}

TEST(RateDerivation, CounterWrapYieldsSmallPositiveDelta) {
  // A counter 5 short of 2^64 that advances by 10 wraps to 4; unsigned
  // subtraction still recovers the true delta, so the derived rate is the
  // honest small positive number — never negative, never ~2^64.
  const std::uint64_t prev = std::numeric_limits<std::uint64_t>::max() - 4;
  obs::MetricsRegistry registry;
  auto& c = registry.counter("wrap");
  c.set(prev);
  c.inc(10);
  const std::uint64_t cur = registry.snapshot().counter("wrap");
  EXPECT_EQ(cur, 5u);  // wrapped past 2^64
  EXPECT_EQ(obs::counter_delta(prev, cur), 10u);
  EXPECT_DOUBLE_EQ(obs::rate_per_sec(obs::counter_delta(prev, cur), 1'000'000),
                   10.0);
}

TEST(RateDerivation, EtaSemantics) {
  EXPECT_DOUBLE_EQ(obs::eta_seconds(50, 100, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::eta_seconds(100, 100, 10.0), 0.0);  // done
  EXPECT_DOUBLE_EQ(obs::eta_seconds(101, 100, 10.0), 0.0);  // overshot
  EXPECT_LT(obs::eta_seconds(50, 100, 0.0), 0.0);  // stalled: unknowable
}

// -- JSONL snapshot schema ---------------------------------------------------

TEST(MonitorSnapshotJson, FirstTickHasCountersButNoDeltas) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").inc(5);
  registry.gauge("g.depth").set(-2);
  registry.histogram("h_us", {10, 100}).record(7);
  const auto snap = registry.snapshot();

  const auto doc = jsonlite::parse(obs::monitor_snapshot_json(
      snap, nullptr, 0, 1234, 0, 1700000000000, false));
  EXPECT_EQ(doc.at("seq").integer(), 0);
  EXPECT_FALSE(doc.at("final").boolean());
  EXPECT_EQ(doc.at("wall_unix_ms").integer(), 1700000000000);
  EXPECT_EQ(doc.at("elapsed_us").integer(), 1234);
  EXPECT_EQ(doc.at("counters").at("a.count").integer(), 5);
  EXPECT_EQ(doc.at("gauges").at("g.depth").integer(), -2);
  EXPECT_TRUE(doc.at("deltas").object().empty());
  EXPECT_TRUE(doc.at("rates_per_s").object().empty());
  const auto& h = doc.at("histograms").at("h_us");
  EXPECT_EQ(h.at("count").integer(), 1);
  EXPECT_EQ(h.at("max").integer(), 7);
  EXPECT_GT(h.at("p50").number(), 0.0);
}

TEST(MonitorSnapshotJson, DeltasAndRatesOnlyForMovedCounters) {
  obs::MetricsRegistry registry;
  registry.counter("moving").inc(5);
  registry.counter("idle").inc(3);
  const auto prev = registry.snapshot();
  registry.counter("moving").inc(20);
  const auto cur = registry.snapshot();

  const auto doc = jsonlite::parse(obs::monitor_snapshot_json(
      cur, &prev, 3, 2'000'000, 1'000'000, 1700000000500, true));
  EXPECT_TRUE(doc.at("final").boolean());
  EXPECT_EQ(doc.at("deltas").at("moving").integer(), 20);
  EXPECT_FALSE(doc.at("deltas").has("idle"));
  EXPECT_DOUBLE_EQ(doc.at("rates_per_s").at("moving").number(), 20.0);
  // The cumulative block still carries every counter.
  EXPECT_EQ(doc.at("counters").at("idle").integer(), 3);
}

// -- the monitor thread ------------------------------------------------------

TEST(Monitor, WritesJsonlSeriesClosingOnRegistryTotals) {
  const std::string path = temp_path("monitor_series");
  obs::Telemetry telemetry;
  obs::MonitorConfig config;
  config.jsonl_path = path;
  config.interval = std::chrono::milliseconds(5);
  obs::Monitor monitor(telemetry, config);
  ASSERT_TRUE(monitor.start());

  auto& work = telemetry.metrics().counter("work.items");
  for (int i = 0; i < 10; ++i) {
    work.inc(7);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }
  monitor.stop();
  EXPECT_FALSE(monitor.running());
  const std::uint64_t written = monitor.snapshots_written();
  EXPECT_GE(written, 3u);
  monitor.stop();  // idempotent
  EXPECT_EQ(monitor.snapshots_written(), written);

  // Every line parses; seq and elapsed_us advance; exactly one final line,
  // the last, and its cumulative counters equal the registry's end state.
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  std::int64_t last_seq = -1;
  std::int64_t last_elapsed = -1;
  bool saw_final = false;
  const auto end_state = telemetry.metrics().snapshot();
  while (std::getline(in, line)) {
    ++lines;
    const auto doc = jsonlite::parse(line);
    EXPECT_GT(doc.at("seq").integer(), last_seq);
    last_seq = doc.at("seq").integer();
    EXPECT_GE(doc.at("elapsed_us").integer(), last_elapsed);
    last_elapsed = doc.at("elapsed_us").integer();
    EXPECT_FALSE(saw_final) << "snapshot after the final one";
    if (doc.at("final").boolean()) {
      saw_final = true;
      for (const auto& [name, value] : end_state.counters) {
        EXPECT_EQ(doc.at("counters").at(name).integer(),
                  static_cast<std::int64_t>(value))
            << name;
      }
      EXPECT_EQ(doc.at("counters").object().size(),
                end_state.counters.size());
    }
  }
  EXPECT_EQ(lines, written);
  EXPECT_TRUE(saw_final);
  std::remove(path.c_str());
}

TEST(Monitor, HeartbeatLinesReachTheSink) {
  obs::Telemetry telemetry;
  telemetry.metrics().counter("ingest.records_seen").inc(100);
  telemetry.metrics().counter("coordinator.tasks").set(16);
  telemetry.metrics().counter("coordinator.tasks_executed").inc(4);
  obs::MonitorConfig config;  // no JSONL file: heartbeats only
  config.interval = std::chrono::milliseconds(5);
  obs::Monitor monitor(telemetry, config);
  ASSERT_TRUE(monitor.start());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  monitor.stop();

  bool saw_heartbeat = false;
  for (const auto& event : telemetry.sink().recent()) {
    if (event.message.rfind("monitor: up", 0) == 0) {
      saw_heartbeat = true;
      EXPECT_NE(event.message.find("ingest 100 rec"), std::string::npos)
          << event.message;
      EXPECT_NE(event.message.find("gcd 4/16 tasks"), std::string::npos)
          << event.message;
    }
  }
  EXPECT_TRUE(saw_heartbeat);
}

TEST(Monitor, UnwritableJsonlPathWarnsButStillTicks) {
  obs::Telemetry telemetry;
  obs::MonitorConfig config;
  config.jsonl_path = "/nonexistent-dir-weakkeys/monitor.jsonl";
  config.interval = std::chrono::milliseconds(5);
  obs::Monitor monitor(telemetry, config);
  EXPECT_FALSE(monitor.start());  // the file could not be opened...
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  monitor.stop();
  EXPECT_GE(monitor.snapshots_written(), 1u);  // ...but ticking continued
  EXPECT_GT(telemetry.sink().events_emitted(obs::Level::kWarn), 0u);
}

// -- process self-metrics ----------------------------------------------------

TEST(ProcStats, SamplesRssAndCpuWhereAvailable) {
  const auto stats = obs::sample_proc_self();
#if defined(__linux__)
  ASSERT_TRUE(stats.rss_available);
  EXPECT_GT(stats.rss_kb, 0u);
  EXPECT_GE(stats.peak_rss_kb, stats.rss_kb);
#endif
#if defined(__unix__) || defined(__APPLE__)
  ASSERT_TRUE(stats.cpu_available);
#endif
  if (!stats.rss_available) {
    EXPECT_EQ(stats.rss_kb, 0u);  // graceful no-op elsewhere
  }
}

TEST(ProcStats, RecordsIntoTheRegistry) {
  obs::MetricsRegistry registry;
  obs::record_proc_self(registry);
  const auto snap = registry.snapshot();
#if defined(__linux__)
  ASSERT_TRUE(snap.gauges.count("process.rss_kb"));
  EXPECT_GT(snap.gauges.at("process.rss_kb"), 0);
  ASSERT_TRUE(snap.gauges.count("process.peak_rss_kb"));
#endif
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(snap.counters.count("process.cpu_user_us"));
  EXPECT_TRUE(snap.counters.count("process.cpu_sys_us"));
#endif
}

// -- exit-flush registry -----------------------------------------------------

TEST(ExitFlush, RegisteredFlushesRunOnceAndUnregisterSticks) {
  int ran_a = 0;
  int ran_b = 0;
  const auto token_a = obs::register_exit_flush([&ran_a] { ++ran_a; });
  const auto token_b = obs::register_exit_flush([&ran_b] { ++ran_b; });
  obs::run_exit_flushes();
  EXPECT_EQ(ran_a, 1);
  EXPECT_EQ(ran_b, 1);
  obs::unregister_exit_flush(token_a);
  obs::run_exit_flushes();
  EXPECT_EQ(ran_a, 1);  // unregistered: did not run again
  EXPECT_EQ(ran_b, 2);
  obs::unregister_exit_flush(token_b);  // leave no dangling captures behind
}

// -- Prometheus exposition ---------------------------------------------------

TEST(StatusServer, PrometheusNameMangling) {
  EXPECT_EQ(obs::prometheus_metric_name("ingest.drop.even-modulus"),
            "weakkeys_ingest_drop_even_modulus");
  EXPECT_EQ(obs::prometheus_metric_name("coordinator.worker.3.attempts"),
            "weakkeys_coordinator_worker_3_attempts");
  EXPECT_EQ(obs::prometheus_metric_name("already_ok_42"),
            "weakkeys_already_ok_42");
}

TEST(StatusServer, PrometheusTextExposition) {
  obs::MetricsRegistry registry;
  registry.counter("ingest.records_seen").inc(12);
  registry.gauge("threadpool.queue_depth").set(-1);
  auto& h = registry.histogram("gcd.task_us", {10, 100});
  h.record(5);
  h.record(50);
  h.record(5000);
  const std::string text = obs::prometheus_text(registry.snapshot());

  EXPECT_NE(text.find("# TYPE weakkeys_ingest_records_seen counter\n"
                      "weakkeys_ingest_records_seen 12\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE weakkeys_threadpool_queue_depth gauge\n"
                      "weakkeys_threadpool_queue_depth -1\n"),
            std::string::npos);
  // Cumulative buckets ending in +Inf, plus _sum/_count.
  EXPECT_NE(text.find("weakkeys_gcd_task_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_p50 "), std::string::npos);
  EXPECT_NE(text.find("weakkeys_gcd_task_us_p99 "), std::string::npos);
}

#if defined(WEAKKEYS_TEST_SOCKETS)

/// Minimal blocking HTTP/1.0 GET against loopback; returns the raw
/// response (headers + body), empty on connection failure.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0) ==
        static_cast<ssize_t>(request.size())) {
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
      }
    }
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

/// Like http_get but with a caller-chosen method (HEAD, POST, ...).
std::string http_request(int port, const std::string& method,
                         const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string request =
        method + " " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0) ==
        static_cast<ssize_t>(request.size())) {
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
      }
    }
  }
  ::close(fd);
  return response;
}

TEST(StatusServer, ServesMetricsAndStatusOverHttp) {
  obs::Telemetry telemetry;
  telemetry.metrics().counter("ingest.records_seen").inc(77);
  obs::StatusServer server(telemetry, {});  // ephemeral port
  ASSERT_TRUE(server.start());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("weakkeys_ingest_records_seen 77"),
            std::string::npos);

  const std::string status = http_get(port, "/status");
  EXPECT_EQ(status.rfind("HTTP/1.0 200", 0), 0u);
  const auto doc = jsonlite::parse(body_of(status));
  EXPECT_EQ(doc.at("pid").integer(), ::getpid());
  EXPECT_EQ(doc.at("metrics").at("counters").at("ingest.records_seen")
                .integer(),
            77);

  EXPECT_EQ(http_get(port, "/nope").rfind("HTTP/1.0 404", 0), 0u);
  EXPECT_EQ(server.requests_served(), 3u);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), -1);
  server.stop();  // idempotent
}

TEST(StatusServer, HeadRequestsAnswerHeadersOnly) {
  obs::Telemetry telemetry;
  telemetry.metrics().counter("demo.counter").inc(1);
  obs::StatusServer server(telemetry, {});
  ASSERT_TRUE(server.start());
  const int port = server.port();
  ASSERT_GT(port, 0);

  // HEAD mirrors the GET's status line and Content-Length but ships no
  // body — `curl -I /healthz` for load-balancer probes.
  const std::string get = http_get(port, "/healthz");
  const std::string head = http_request(port, "HEAD", "/healthz");
  EXPECT_EQ(head.rfind("HTTP/1.0 200", 0), 0u) << head;
  EXPECT_TRUE(body_of(head).empty()) << head;
  const std::string content_length =
      "Content-Length: " + std::to_string(body_of(get).size());
  EXPECT_NE(head.find(content_length), std::string::npos) << head;

  // HEAD of a missing path reports the 404 status, still bodyless.
  const std::string missing = http_request(port, "HEAD", "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404", 0), 0u);
  EXPECT_TRUE(body_of(missing).empty());

  // Anything else is rejected outright.
  EXPECT_EQ(http_request(port, "POST", "/healthz").rfind("HTTP/1.0 405", 0),
            0u);
}

TEST(StatusServer, StatusReportsFleetBlockWhenWorkersReport) {
  obs::Telemetry telemetry;
  auto& m = telemetry.metrics();
  // No fleet block before any worker reports.
  obs::StatusServer server(telemetry, {});
  ASSERT_TRUE(server.start());
  const int port = server.port();
  ASSERT_GT(port, 0);
  {
    const auto doc = jsonlite::parse(body_of(http_get(port, "/status")));
    EXPECT_FALSE(doc.has("fleet"));
  }

  // Publish what a FleetAggregator would after two workers exported.
  m.gauge("fleet.workers_reporting").set(2);
  m.counter("fleet.telemetry_snapshots").set(6);
  m.counter("fleet.tasks_executed").set(9);
  m.counter("fleet.compute_us").set(120000);
  m.gauge("fleet.rss_kb").set(3072);
  m.counter("fleet.worker.0.tasks_executed").set(5);
  m.gauge("fleet.worker.0.rss_kb").set(1024);
  m.gauge("fleet.worker.0.cpu_user_us").set(90000);
  m.gauge("fleet.worker.0.queue_depth").set(1);
  m.counter("fleet.worker.1.tasks_executed").set(4);
  m.counter("fleet.worker.1.claims_found").set(3);
  m.gauge("fleet.worker.1.rss_kb").set(2048);

  const auto doc = jsonlite::parse(body_of(http_get(port, "/status")));
  const auto& fleet = doc.at("fleet");
  EXPECT_EQ(fleet.at("workers_reporting").integer(), 2);
  EXPECT_EQ(fleet.at("telemetry_snapshots").integer(), 6);
  EXPECT_EQ(fleet.at("tasks_executed").integer(), 9);
  EXPECT_EQ(fleet.at("compute_us").integer(), 120000);
  EXPECT_EQ(fleet.at("rss_kb").integer(), 3072);
  const auto& per_worker = fleet.at("per_worker").array();
  ASSERT_EQ(per_worker.size(), 2u);
  EXPECT_EQ(per_worker[0].at("id").str(), "0");
  EXPECT_EQ(per_worker[0].at("rss_kb").integer(), 1024);
  EXPECT_EQ(per_worker[0].at("cpu_user_us").integer(), 90000);
  EXPECT_EQ(per_worker[0].at("queue_depth").integer(), 1);
  EXPECT_EQ(per_worker[0].at("tasks_executed").integer(), 5);
  EXPECT_EQ(per_worker[1].at("id").str(), "1");
  EXPECT_EQ(per_worker[1].at("rss_kb").integer(), 2048);
  EXPECT_EQ(per_worker[1].at("tasks_executed").integer(), 4);
  EXPECT_EQ(per_worker[1].at("claims_found").integer(), 3);
}

TEST(StatusServer, BindRetryWalksPastABusyPort) {
  obs::Telemetry telemetry;
  obs::StatusServer first(telemetry, {});
  ASSERT_TRUE(first.start());
  const int taken = first.port();
  ASSERT_GT(taken, 0);

  obs::StatusServerConfig config;
  config.port = static_cast<std::uint16_t>(taken);  // deliberately busy
  config.bind_retries = 16;
  obs::StatusServer second(telemetry, config);
  ASSERT_TRUE(second.start());
  EXPECT_GT(second.port(), taken);
  EXPECT_LE(second.port(), taken + 16);
  // Both servers answer independently.
  EXPECT_EQ(http_get(second.port(), "/metrics").rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_EQ(http_get(first.port(), "/metrics").rfind("HTTP/1.0 200", 0), 0u);
}

#endif  // WEAKKEYS_TEST_SOCKETS

}  // namespace
}  // namespace weakkeys

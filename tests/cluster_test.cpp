// Multi-process cluster: protocol codecs and framing, fault-free output
// equivalence across worker counts, chaos (SIGKILL/SIGSTOP + lossy frames +
// real crashes/corruption/stragglers) with byte-identical output, resume
// across engines via the shared journal, graceful degradation, and the
// cluster.* metrics surface.
//
// Every test that spawns workers uses the real gcd_worker binary, resolved
// at compile time from the build tree (WEAKKEYS_GCD_WORKER_BIN).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/coordinator.hpp"
#include "cluster/process_coordinator.hpp"
#include "cluster/protocol.hpp"
#include "obs/telemetry.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/fault_injector.hpp"
#include "util/net.hpp"

namespace weakkeys::cluster {
namespace {

using bn::BigInt;

std::string worker_binary() { return WEAKKEYS_GCD_WORKER_BIN; }

/// Small corpus with planted shared-prime structure (and a duplicate), so
/// subsets carry real divisors for verification/quarantine to bite on.
std::vector<BigInt> make_moduli(std::uint64_t seed, std::size_t healthy) {
  std::vector<BigInt> moduli;
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 6;
  for (std::size_t i = 0; i < healthy; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  std::vector<BigInt> primes;
  for (int i = 0; i < 8; ++i) {
    primes.push_back(rsa::generate_prime(rng, 64, opts));
  }
  moduli.push_back(primes[0] * primes[1]);
  moduli.push_back(primes[0] * primes[2]);  // pair sharing primes[0]
  moduli.push_back(primes[3] * primes[4]);  // star of three sharing primes[3]
  moduli.push_back(primes[3] * primes[5]);
  moduli.push_back(primes[3] * primes[6]);
  moduli.push_back(primes[1] * primes[7]);
  moduli.push_back(primes[1] * primes[7]);  // duplicate
  return moduli;
}

/// Cluster config tuned for test latency: tight heartbeats and deadlines,
/// fast retry schedule.
ClusterConfig fast_config(std::size_t k, std::size_t workers) {
  ClusterConfig config;
  config.subsets = k;
  config.workers = workers;
  config.worker_binary = worker_binary();
  config.retry.base = std::chrono::milliseconds(1);
  config.retry.cap = std::chrono::milliseconds(8);
  config.task_timeout = std::chrono::milliseconds(2000);
  config.heartbeat_interval = std::chrono::milliseconds(25);
  config.heartbeat_misses = 8;
  config.spawn_timeout = std::chrono::milliseconds(10000);
  config.restart_budget = 16;
  return config;
}

std::string temp_checkpoint(const std::string& tag) {
  return ::testing::TempDir() + "cluster_" + tag + ".gcdckpt";
}

// ------------------------------------------------------- protocol codecs ----

TEST(ClusterProtocol, MessageRoundTrips) {
  HelloMsg hello{7, 1234, kProtocolVersion};
  const auto hello2 = HelloMsg::decode(hello.encode());
  ASSERT_TRUE(hello2);
  EXPECT_EQ(hello2->worker_id, 7u);
  EXPECT_EQ(hello2->pid, 1234u);
  EXPECT_EQ(hello2->version, kProtocolVersion);

  SubsetDataMsg subset;
  subset.subset = 3;
  subset.moduli = {BigInt(77), BigInt(221), BigInt(1)};
  const auto subset2 = SubsetDataMsg::decode(subset.encode());
  ASSERT_TRUE(subset2);
  EXPECT_EQ(subset2->subset, 3u);
  EXPECT_EQ(subset2->moduli, subset.moduli);

  ProductDataMsg product;
  product.subset = 2;
  product.product = BigInt(123456789);
  const auto product2 = ProductDataMsg::decode(product.encode());
  ASSERT_TRUE(product2);
  EXPECT_EQ(product2->product, product.product);

  TaskAssignMsg assign{11, 2, 3, 1};
  const auto assign2 = TaskAssignMsg::decode(assign.encode());
  ASSERT_TRUE(assign2);
  EXPECT_EQ(assign2->task, 11u);
  EXPECT_EQ(assign2->product_subset, 2u);
  EXPECT_EQ(assign2->leaf_subset, 3u);
  EXPECT_EQ(assign2->attempt, 1u);

  TaskResultMsg result;
  result.task = 5;
  result.worker_id = 1;
  result.result_seq = 0x1122334455667788ull;
  result.claims.push_back({4, BigInt(17)});
  result.claims.push_back({9, BigInt(1) << 80});
  const auto result2 = TaskResultMsg::decode(result.encode());
  ASSERT_TRUE(result2);
  EXPECT_EQ(result2->result_seq, 0x1122334455667788ull);
  ASSERT_EQ(result2->claims.size(), 2u);
  EXPECT_EQ(result2->claims[0].leaf, 4u);
  EXPECT_EQ(result2->claims[0].divisor, BigInt(17));
  EXPECT_EQ(result2->claims[1].divisor, BigInt(1) << 80);

  PingMsg ping{42, 99999, 7};
  const auto ping2 = PingMsg::decode(ping.encode());
  ASSERT_TRUE(ping2);
  EXPECT_EQ(ping2->seq, 42u);
  EXPECT_EQ(ping2->t_send_ns, 99999);
  EXPECT_EQ(ping2->ack_result_seq, 7u);

  PongMsg pong{42, 99999, 3, 17, 2};
  const auto pong2 = PongMsg::decode(pong.encode());
  ASSERT_TRUE(pong2);
  EXPECT_EQ(pong2->frames_sent, 17u);
  EXPECT_EQ(pong2->frames_dropped, 2u);
}

TEST(ClusterProtocol, SessionAndStreamMessageRoundTrips) {
  HelloAckMsg ack{0xdeadbeef, 25, 31};
  const auto ack2 = HelloAckMsg::decode(ack.encode());
  ASSERT_TRUE(ack2);
  EXPECT_EQ(ack2->fingerprint, 0xdeadbeefu);
  EXPECT_EQ(ack2->heartbeat_interval_ms, 25u);
  EXPECT_EQ(ack2->session_id, 31u);

  ReconnectHelloMsg rh{3, 4242, 31, 16, kProtocolVersion};
  const auto rh2 = ReconnectHelloMsg::decode(rh.encode());
  ASSERT_TRUE(rh2);
  EXPECT_EQ(rh2->worker_id, 3u);
  EXPECT_EQ(rh2->pid, 4242u);
  EXPECT_EQ(rh2->session_id, 31u);
  EXPECT_EQ(rh2->last_committed_seq, 16u);
  EXPECT_EQ(rh2->version, kProtocolVersion);

  ReconnectAckMsg ra{1, 16, 25};
  const auto ra2 = ReconnectAckMsg::decode(ra.encode());
  ASSERT_TRUE(ra2);
  EXPECT_EQ(ra2->accepted, 1u);
  EXPECT_EQ(ra2->ack_result_seq, 16u);
  EXPECT_EQ(ra2->heartbeat_interval_ms, 25u);

  StreamBeginMsg begin{9, static_cast<std::uint8_t>(StreamKind::kProduct), 2,
                       1u << 20, 0xabadcafe};
  const auto begin2 = StreamBeginMsg::decode(begin.encode());
  ASSERT_TRUE(begin2);
  EXPECT_EQ(begin2->stream_id, 9u);
  EXPECT_EQ(begin2->kind, static_cast<std::uint8_t>(StreamKind::kProduct));
  EXPECT_EQ(begin2->subset, 2u);
  EXPECT_EQ(begin2->total_bytes, 1u << 20);
  EXPECT_EQ(begin2->payload_crc, 0xabadcafeu);

  StreamChunkMsg chunk;
  chunk.stream_id = 9;
  chunk.offset = 65536;
  chunk.data = {0x00, 0x7f, 0xff, 0x10};
  const auto chunk2 = StreamChunkMsg::decode(chunk.encode());
  ASSERT_TRUE(chunk2);
  EXPECT_EQ(chunk2->stream_id, 9u);
  EXPECT_EQ(chunk2->offset, 65536u);
  EXPECT_EQ(chunk2->data, chunk.data);

  StreamAckMsg sack{9, 65540};
  const auto sack2 = StreamAckMsg::decode(sack.encode());
  ASSERT_TRUE(sack2);
  EXPECT_EQ(sack2->stream_id, 9u);
  EXPECT_EQ(sack2->received, 65540u);

  // The session/stream codecs reject truncation cleanly, like the rest.
  const auto truncated = [](std::vector<std::uint8_t> body) {
    body.pop_back();
    return body;
  };
  EXPECT_FALSE(ReconnectHelloMsg::decode(truncated(rh.encode())));
  EXPECT_FALSE(ReconnectAckMsg::decode(truncated(ra.encode())));
  EXPECT_FALSE(StreamBeginMsg::decode(truncated(begin.encode())));
  EXPECT_FALSE(StreamChunkMsg::decode(truncated(chunk.encode())));
  EXPECT_FALSE(StreamAckMsg::decode(truncated(sack.encode())));
}

TEST(ClusterProtocol, TraceContextTailsRoundTripAndDegradeToV2) {
  // v3 appends trace/telemetry tails to TaskAssign/Ping/Pong. The default
  // encode() carries them; encode(2) emits the legacy body, which must
  // still decode — with the tails at their zero defaults — so a v3
  // coordinator can speak each link's negotiated dialect.
  TaskAssignMsg assign{11, 2, 3, 1};
  assign.trace_id = 0xfeedfacecafef00dull;
  assign.parent_span = 77;
  assign.assign_ts_ns = 123456789012345;
  const auto assign3 = TaskAssignMsg::decode(assign.encode());
  ASSERT_TRUE(assign3);
  EXPECT_EQ(assign3->task, 11u);
  EXPECT_EQ(assign3->trace_id, 0xfeedfacecafef00dull);
  EXPECT_EQ(assign3->parent_span, 77u);
  EXPECT_EQ(assign3->assign_ts_ns, 123456789012345);
  const auto assign_v2_body = assign.encode(2);
  EXPECT_LT(assign_v2_body.size(), assign.encode().size());
  const auto assign2 = TaskAssignMsg::decode(assign_v2_body);
  ASSERT_TRUE(assign2);
  EXPECT_EQ(assign2->task, 11u);
  EXPECT_EQ(assign2->attempt, 1u);
  EXPECT_EQ(assign2->trace_id, 0u);
  EXPECT_EQ(assign2->parent_span, 0u);
  EXPECT_EQ(assign2->assign_ts_ns, 0);

  PingMsg ping{42, 99999, 7};
  ping.ack_telemetry_seq = 5;
  const auto ping3 = PingMsg::decode(ping.encode());
  ASSERT_TRUE(ping3);
  EXPECT_EQ(ping3->ack_telemetry_seq, 5u);
  const auto ping2 = PingMsg::decode(ping.encode(2));
  ASSERT_TRUE(ping2);
  EXPECT_EQ(ping2->seq, 42u);
  EXPECT_EQ(ping2->ack_telemetry_seq, 0u);

  PongMsg pong{42, 99999, 3, 17, 2};
  pong.worker_now_ns = 31337;
  const auto pong3 = PongMsg::decode(pong.encode());
  ASSERT_TRUE(pong3);
  EXPECT_EQ(pong3->worker_now_ns, 31337);
  const auto pong2 = PongMsg::decode(pong.encode(2));
  ASSERT_TRUE(pong2);
  EXPECT_EQ(pong2->frames_sent, 17u);
  EXPECT_EQ(pong2->worker_now_ns, 0);
}

TEST(ClusterProtocol, TelemetrySnapshotRoundTripsAndRejectsMalformed) {
  TelemetrySnapshotMsg msg;
  msg.worker_id = 3;
  msg.seq = 9;
  msg.first_span_index = 40;
  msg.trace_epoch_ns = 1726000000;
  msg.rss_kb = 2048;
  msg.peak_rss_kb = 4096;
  msg.cpu_user_us = 1234;
  msg.cpu_sys_us = 56;
  msg.counters = {{"tasks_executed", 7}, {"compute_us", 88000}};
  msg.gauges = {{"queue_depth", 2}};
  TelemetrySpan span;
  span.name = "task.compute";
  span.ts_us = 10;
  span.dur_us = 20;
  span.depth = 0;
  span.args = {{"task", 11}, {"attempt", 1}};
  msg.spans = {span};

  auto body = msg.encode();
  const auto decoded = TelemetrySnapshotMsg::decode(body);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->worker_id, 3u);
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_EQ(decoded->first_span_index, 40u);
  EXPECT_EQ(decoded->trace_epoch_ns, 1726000000);
  EXPECT_EQ(decoded->rss_kb, 2048);
  EXPECT_EQ(decoded->peak_rss_kb, 4096);
  EXPECT_EQ(decoded->cpu_user_us, 1234);
  EXPECT_EQ(decoded->cpu_sys_us, 56);
  EXPECT_EQ(decoded->counters, msg.counters);
  EXPECT_EQ(decoded->gauges, msg.gauges);
  ASSERT_EQ(decoded->spans.size(), 1u);
  EXPECT_EQ(decoded->spans[0].name, "task.compute");
  EXPECT_EQ(decoded->spans[0].ts_us, 10u);
  EXPECT_EQ(decoded->spans[0].dur_us, 20u);
  EXPECT_EQ(decoded->spans[0].args, span.args);

  // Truncate at every prefix: decode must fail cleanly, never throw.
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(body.begin(), body.begin() + cut);
    EXPECT_FALSE(TelemetrySnapshotMsg::decode(prefix)) << "cut=" << cut;
  }
  body.push_back(0xff);  // trailing garbage is rejected too
  EXPECT_FALSE(TelemetrySnapshotMsg::decode(body));
}

TEST(ClusterProtocol, MalformedBodiesDecodeToNullopt) {
  TaskResultMsg result;
  result.task = 5;
  result.claims.push_back({4, BigInt(17)});
  auto body = result.encode();
  // Truncate at every prefix: decode must fail cleanly, never throw.
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(body.begin(),
                                           body.begin() + cut);
    EXPECT_FALSE(TaskResultMsg::decode(prefix)) << "cut=" << cut;
  }
  // Trailing garbage is rejected too.
  body.push_back(0xff);
  EXPECT_FALSE(TaskResultMsg::decode(body));
  EXPECT_FALSE(HelloMsg::decode({}));
}

// ------------------------------------------------------- frame transport ----

class FramePair : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_.reset(fds[0]);
    b_.reset(fds[1]);
  }
  util::net::UniqueFd a_, b_;
};

TEST_F(FramePair, SendRecvRoundTrip) {
  FrameConn tx(a_.get(), 0);
  FrameConn rx(b_.get(), 1);
  const PingMsg ping{9, 1234};
  ASSERT_TRUE(tx.send(MsgType::kPing, ping.encode()));
  Frame frame;
  ASSERT_EQ(rx.recv(&frame, std::chrono::milliseconds(1000)),
            RecvStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kPing);
  const auto decoded = PingMsg::decode(frame.body);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->seq, 9u);
  EXPECT_EQ(tx.stats().sent, 1u);
}

TEST_F(FramePair, RecvTimesOutThenClosedOnEof) {
  FrameConn rx(b_.get(), 1);
  Frame frame;
  EXPECT_EQ(rx.recv(&frame, std::chrono::milliseconds(10)),
            RecvStatus::kTimeout);
  a_.reset();  // peer closes
  EXPECT_EQ(rx.recv(&frame, std::chrono::milliseconds(1000)),
            RecvStatus::kClosed);
}

TEST_F(FramePair, GarbledFrameIsRejectedByCrcAndCounted) {
  util::FaultConfig faults;
  faults.seed = 5;
  faults.frame_garble_probability = 1.0;
  const util::FaultInjector injector(faults);
  FrameConn tx(a_.get(), 0, &injector);
  FrameConn rx(b_.get(), 1);

  // Injectable frame: garbled on the wire, rejected by the receiver.
  ASSERT_TRUE(tx.send(MsgType::kTaskAssign, TaskAssignMsg{1, 0, 1, 0}.encode(),
                      /*injectable=*/true));
  Frame frame;
  EXPECT_EQ(rx.recv(&frame, std::chrono::milliseconds(1000)),
            RecvStatus::kCorrupt);
  EXPECT_EQ(tx.stats().garbled, 1u);
  EXPECT_EQ(rx.stats().corrupt, 1u);

  // Control frames bypass injection even at probability 1.
  ASSERT_TRUE(tx.send(MsgType::kPing, PingMsg{1, 2}.encode()));
  EXPECT_EQ(rx.recv(&frame, std::chrono::milliseconds(1000)),
            RecvStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kPing);
}

TEST_F(FramePair, DroppedFrameNeverArrives) {
  util::FaultConfig faults;
  faults.seed = 6;
  faults.frame_drop_probability = 1.0;
  const util::FaultInjector injector(faults);
  FrameConn tx(a_.get(), 0, &injector);
  FrameConn rx(b_.get(), 1);

  ASSERT_TRUE(tx.send(MsgType::kTaskAssign, TaskAssignMsg{1, 0, 1, 0}.encode(),
                      /*injectable=*/true));
  EXPECT_EQ(tx.stats().dropped, 1u);
  EXPECT_EQ(tx.stats().sent, 0u);
  Frame frame;
  EXPECT_EQ(rx.recv(&frame, std::chrono::milliseconds(20)),
            RecvStatus::kTimeout);
}

TEST_F(FramePair, PeerDeathBetweenFramesFailsSendWithoutSigpipe) {
  // Regression for the SIGPIPE guard: a peer that dies between frames must
  // turn subsequent sends into a clean `false`, not a process-killing
  // signal. The child holds the far end, reads one frame, and exits
  // abruptly without shutdown.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    FrameConn rx(b_.get(), 1);
    Frame frame;
    rx.recv(&frame, std::chrono::milliseconds(5000));
    ::_exit(0);
  }
  b_.reset();  // the child now owns the only far-end descriptor

  FrameConn tx(a_.get(), 0);
  ASSERT_TRUE(tx.send(MsgType::kPing, PingMsg{1, 0, 0}.encode()));
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // The peer is gone. The first send may still land in the socket buffer;
  // within a few frames the kernel reports the broken pipe and send()
  // returns false — and this process is still here to notice.
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !tx.send(MsgType::kPing, PingMsg{2, 0, 0}.encode());
  }
  EXPECT_TRUE(failed);
}

// --------------------------------------------------------- fault-free e2e ----

TEST(Cluster, FaultFreeMatchesBatchGcdAcrossWorkerCounts) {
  const auto moduli = make_moduli(201, 20);
  const auto reference = batchgcd::batch_gcd(moduli);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    ClusterStats stats;
    const auto result =
        batch_gcd_cluster(moduli, fast_config(3, workers), &stats);
    EXPECT_EQ(result.divisors, reference.divisors) << "workers=" << workers;
    EXPECT_EQ(stats.tasks, 9u);
    EXPECT_EQ(stats.tasks_executed, 9u);
    EXPECT_EQ(stats.tasks_resumed, 0u);
    EXPECT_EQ(stats.results_quarantined, 0u);
    EXPECT_GE(stats.workers_spawned, workers);
    EXPECT_GT(stats.frames_sent, 0u);
  }
}

TEST(Cluster, EmptyInputAndMissingBinary) {
  ClusterStats stats;
  const auto empty = batch_gcd_cluster({}, fast_config(3, 2), &stats);
  EXPECT_TRUE(empty.divisors.empty());

  auto config = fast_config(2, 1);
  config.worker_binary = "/nonexistent/gcd_worker";
  const std::vector<BigInt> moduli = {BigInt(77), BigInt(221)};
  EXPECT_THROW(batch_gcd_cluster(moduli, config), ClusterError);
}

// ------------------------------------------------------------- chaos e2e ----

TEST(Cluster, ChaosSigkillSigstopAndLossyFramesMatchBatchGcd) {
  // The acceptance gate: 4 workers under real SIGKILL/SIGSTOP plus frame
  // corruption/drops plus real mid-task crashes, corrupt results, and
  // stragglers — and the vulnerable set must be byte-identical to the
  // fault-free single-process reference.
  const auto moduli = make_moduli(202, 20);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 77;
  faults.sigkill_probability = 0.08;
  faults.sigstop_probability = 0.05;
  faults.frame_drop_probability = 0.05;
  faults.frame_garble_probability = 0.05;
  faults.frame_delay_probability = 0.10;
  faults.frame_delay_ms = 2;
  faults.crash_probability = 0.05;
  faults.corrupt_probability = 0.08;
  const util::FaultInjector injector(faults);

  auto config = fast_config(4, 4);
  config.task_timeout = std::chrono::milliseconds(600);
  config.injector = &injector;
  config.restart_budget = 64;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_EQ(stats.tasks_executed + stats.tasks_resumed, 16u);
  // The schedule is deterministic, so the chaos actually happened:
  EXPECT_GT(stats.sigkills_injected + stats.sigstops_injected, 0u);
  EXPECT_GT(stats.workers_lost, 0u);
  EXPECT_GT(stats.respawns, 0u);
  EXPECT_LE(stats.respawns, config.restart_budget);
}

TEST(Cluster, CorruptResultsAreQuarantinedAndWorkerDemoted) {
  const auto moduli = make_moduli(203, 16);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 31;
  faults.corrupt_probability = 0.6;  // most first attempts ship garbage
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 2);
  config.injector = &injector;
  config.quarantine_strikes = 2;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.results_quarantined, 0u);
  EXPECT_GT(stats.workers_demoted, 0u);
  EXPECT_GT(stats.retries, 0u);
}

TEST(Cluster, SigstopIsCaughtByHeartbeatNotTimeoutAlone) {
  const auto moduli = make_moduli(204, 14);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 13;
  faults.sigstop_probability = 0.3;
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 2);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(5000);  // heartbeat first
  config.heartbeat_interval = std::chrono::milliseconds(20);
  config.heartbeat_misses = 5;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.sigstops_injected, 0u);
  EXPECT_GT(stats.heartbeat_deaths, 0u);
  EXPECT_GT(stats.max_heartbeat_rtt_us, 0u);
}

// -------------------------------------------------- degradation & failure ----

TEST(Cluster, DegradesToFewerWorkersWhenBudgetExhausted) {
  const auto moduli = make_moduli(205, 14);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 17;
  faults.sigkill_probability = 0.25;
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 4);
  config.injector = &injector;
  config.restart_budget = 0;  // the first death retires its slot
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.workers_lost, 0u);
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_GT(stats.workers_retired, 0u);  // degraded, still finished
}

TEST(Cluster, FailsCleanlyWhenAllWorkersExhausted) {
  const auto moduli = make_moduli(206, 10);

  util::FaultConfig faults;
  faults.seed = 19;
  faults.sigkill_probability = 1.0;  // every assignment kills its worker
  const util::FaultInjector injector(faults);

  auto config = fast_config(2, 2);
  config.injector = &injector;
  config.restart_budget = 2;
  EXPECT_THROW(batch_gcd_cluster(moduli, config), ClusterError);
}

// ------------------------------------------------------------ checkpoints ----

TEST(Cluster, HaltedRunResumesFromJournal) {
  const auto moduli = make_moduli(207, 18);
  const auto reference = batchgcd::batch_gcd(moduli);
  const std::string path = temp_checkpoint("resume");
  std::remove(path.c_str());

  auto config = fast_config(4, 2);
  config.checkpoint_path = path;
  config.halt_after_tasks = 5;
  EXPECT_THROW(batch_gcd_cluster(moduli, config),
               batchgcd::CoordinatorInterrupted);

  config.halt_after_tasks = 0;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GE(stats.tasks_resumed, 5u);
  EXPECT_EQ(stats.tasks_resumed + stats.tasks_executed, 16u);
  // The journal is superseded by success and removed.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f) std::fclose(f);
}

TEST(Cluster, JournalIsInterchangeableWithInProcessCoordinator) {
  // A run halted under the cluster engine resumes under the in-process
  // coordinator, and vice versa: one journal format, two engines.
  const auto moduli = make_moduli(208, 18);
  const auto reference = batchgcd::batch_gcd(moduli);

  {  // cluster -> in-process
    const std::string path = temp_checkpoint("x_engine_a");
    std::remove(path.c_str());
    auto config = fast_config(4, 2);
    config.checkpoint_path = path;
    config.halt_after_tasks = 4;
    EXPECT_THROW(batch_gcd_cluster(moduli, config),
                 batchgcd::CoordinatorInterrupted);

    batchgcd::CoordinatorConfig inproc;
    inproc.subsets = 4;
    inproc.workers = 2;
    inproc.checkpoint_path = path;
    batchgcd::CoordinatorStats stats;
    const auto result = batchgcd::batch_gcd_coordinated(moduli, inproc, &stats);
    EXPECT_EQ(result.divisors, reference.divisors);
    EXPECT_GE(stats.tasks_resumed, 4u);
  }
  {  // in-process -> cluster
    const std::string path = temp_checkpoint("x_engine_b");
    std::remove(path.c_str());
    batchgcd::CoordinatorConfig inproc;
    inproc.subsets = 4;
    inproc.workers = 2;
    inproc.checkpoint_path = path;
    inproc.halt_after_tasks = 4;
    EXPECT_THROW(batchgcd::batch_gcd_coordinated(moduli, inproc),
                 batchgcd::CoordinatorInterrupted);

    auto config = fast_config(4, 2);
    config.checkpoint_path = path;
    ClusterStats stats;
    const auto result = batch_gcd_cluster(moduli, config, &stats);
    EXPECT_EQ(result.divisors, reference.divisors);
    EXPECT_GE(stats.tasks_resumed, 4u);
  }
}

TEST(Cluster, ChaosRunWithCheckpointLeavesNoTmpOrphans) {
  const auto moduli = make_moduli(209, 14);
  const std::string path = temp_checkpoint("no_orphans");
  std::remove(path.c_str());

  util::FaultConfig faults;
  faults.seed = 23;
  faults.sigkill_probability = 0.15;
  faults.frame_garble_probability = 0.05;
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 3);
  config.task_timeout = std::chrono::milliseconds(600);
  config.injector = &injector;
  config.checkpoint_path = path;
  config.remove_checkpoint_on_success = false;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, batchgcd::batch_gcd(moduli).divisors);

  // The journal exists (retained on request); its tmp sibling must not.
  std::FILE* journal = std::fopen(path.c_str(), "rb");
  EXPECT_NE(journal, nullptr);
  if (journal) std::fclose(journal);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- metrics ----

TEST(Cluster, MetricsSurfaceClusterCounters) {
  const auto moduli = make_moduli(210, 14);
  obs::Telemetry telemetry;

  auto config = fast_config(3, 2);
  config.telemetry = &telemetry;
  ClusterStats stats;
  batch_gcd_cluster(moduli, config, &stats);

  const auto snapshot = telemetry.metrics().snapshot();
  EXPECT_EQ(snapshot.counter("cluster.tasks"), 9u);
  EXPECT_EQ(snapshot.counter("cluster.subsets"), 3u);
  EXPECT_EQ(snapshot.counter("cluster.workers"), 2u);
  EXPECT_EQ(snapshot.counter("cluster.tasks_executed"), 9u);
  EXPECT_EQ(snapshot.counter("cluster.attempts"), stats.attempts);
  EXPECT_GT(snapshot.counter("cluster.frames_sent"), 0u);
  const auto gauge = snapshot.gauges.find("cluster.workers_alive");
  ASSERT_NE(gauge, snapshot.gauges.end());
  EXPECT_EQ(gauge->second, 0);  // all workers shut down at the end
  const auto rtt = snapshot.histograms.find("cluster.heartbeat_rtt_us");
  ASSERT_NE(rtt, snapshot.histograms.end());
  EXPECT_GT(rtt->second.count, 0u);
}

// --------------------------------------------------------- fleet telemetry ----

/// Reads a whole file into a string; empty when the file cannot be opened.
std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ClusterTelemetry, FleetCountersSumToCoordinatorCommitsUnderLinkFaults) {
  // The fleet accounting invariant: the fleet.tasks_executed rollup (summed
  // worker-side counters, shipped over a faulted link with outbox replay
  // across reconnects) must equal the coordinator's committed-task count.
  // Disconnect faults heal by session reconnect, so no task is reassigned
  // or re-executed — which the test asserts as its own precondition; replay
  // after reconnect must then be idempotent, not double-counted.
  const auto moduli = make_moduli(230, 18);
  const auto reference = batchgcd::batch_gcd(moduli);
  obs::Telemetry telemetry;

  util::FaultConfig faults;
  faults.seed = 41;
  faults.conn_disconnect_probability = 0.04;
  const util::FaultInjector injector(faults);

  auto config = fast_config(3, 2);
  config.session_grace = std::chrono::milliseconds(5000);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(5000);
  config.telemetry = &telemetry;
  config.telemetry_interval = std::chrono::milliseconds(10);
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  // Accounting precondition: every commit was executed exactly once.
  ASSERT_EQ(stats.tasks_reassigned, 0u);
  ASSERT_EQ(stats.task_timeouts, 0u);
  EXPECT_EQ(stats.tasks_executed, 9u);
  EXPECT_GT(stats.telemetry_snapshots, 0u);

  const auto snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.counter("fleet.tasks_executed"), stats.tasks_executed);
  EXPECT_EQ(snap.counter("fleet.tasks_executed"),
            snap.counter("fleet.worker.0.tasks_executed") +
                snap.counter("fleet.worker.1.tasks_executed"));
  EXPECT_EQ(snap.counter("fleet.telemetry_snapshots"),
            stats.telemetry_snapshots);
  const auto reporting = snap.gauges.find("fleet.workers_reporting");
  ASSERT_NE(reporting, snap.gauges.end());
  EXPECT_EQ(reporting->second, 2);
}

TEST(ClusterTelemetry, LegacyV2WorkerCompletesAgainstV3Coordinator) {
  // Version-compat gate: a worker pinned to the v2 dialect (no telemetry,
  // legacy Hello/Pong bodies, v2 TaskAssign bodies from the coordinator)
  // still completes a run against the v3 coordinator with identical output.
  const auto moduli = make_moduli(231, 14);
  const auto reference = batchgcd::batch_gcd(moduli);

  auto config = fast_config(3, 2);
  config.worker_extra_args = {"--protocol-v2"};
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_EQ(stats.tasks_executed, 9u);
  // v2 workers export nothing; the fleet plane simply stays empty.
  EXPECT_EQ(stats.telemetry_snapshots, 0u);
  EXPECT_EQ(stats.telemetry_spans, 0u);
}

TEST(ClusterTelemetry, MergedFleetTraceCoversEveryCommittedTask) {
  // The tentpole artifact: a run with fleet_trace_path set produces one
  // merged Chrome trace where every committed task contributes a
  // coordinator assign span plus the worker-side recv/compute/verify/send
  // spans, and a fleet metrics JSON lands next to it.
  const auto moduli = make_moduli(232, 14);
  const std::string trace_path = ::testing::TempDir() + "fleet_trace.json";
  const std::string metrics_path = trace_path + ".metrics.json";
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());

  auto config = fast_config(3, 2);
  config.fleet_trace_path = trace_path;
  config.telemetry_interval = std::chrono::milliseconds(10);
  ClusterStats stats;
  batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(stats.tasks_executed, 9u);
  EXPECT_GT(stats.telemetry_spans, 0u);

  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty()) << trace_path;
  // Chrome trace_event envelope with a lane per process.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker 1\""), std::string::npos);
  // One assign span per attempt, one worker span quartet per execution.
  EXPECT_EQ(count_occurrences(trace, "\"task.assign\""), stats.attempts);
  EXPECT_EQ(count_occurrences(trace, "\"task.recv\""), 9u);
  EXPECT_EQ(count_occurrences(trace, "\"task.compute\""), 9u);
  EXPECT_EQ(count_occurrences(trace, "\"task.verify\""), 9u);
  EXPECT_EQ(count_occurrences(trace, "\"task.send\""), 9u);
  // Worker spans carry the propagated trace context.
  EXPECT_NE(trace.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(trace.find("\"parent_span\""), std::string::npos);

  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(metrics.empty()) << metrics_path;
  EXPECT_NE(metrics.find("\"fleet\""), std::string::npos);
  EXPECT_NE(metrics.find("\"tasks_executed\""), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

// ----------------------------------------------------------- cancellation ----

TEST(Cluster, CancellationStopsTheRunAndKeepsTheJournal) {
  const auto moduli = make_moduli(211, 14);
  const std::string path = temp_checkpoint("cancel");
  std::remove(path.c_str());

  util::CancellationToken token;
  auto config = fast_config(3, 2);
  config.checkpoint_path = path;
  config.cancel = &token;
  token.cancel("test cancel");
  EXPECT_THROW(batch_gcd_cluster(moduli, config), util::Cancelled);

  // Journal (possibly empty of records) survives for resume.
  ClusterStats stats;
  auto resume = fast_config(3, 2);
  resume.checkpoint_path = path;
  const auto result = batch_gcd_cluster(moduli, resume, &stats);
  EXPECT_EQ(result.divisors, batchgcd::batch_gcd(moduli).divisors);
}

// ------------------------------------------------- sessions & streaming ----

/// fast_config plus a session grace window: link loss parks the session for
/// `grace_ms` instead of killing the worker.
ClusterConfig session_config(std::size_t k, std::size_t workers,
                             int grace_ms) {
  auto config = fast_config(k, workers);
  config.session_grace = std::chrono::milliseconds(grace_ms);
  return config;
}

TEST(ClusterSession, ReconnectHealsAbruptDisconnects) {
  // The tentpole invariant: deterministic abrupt disconnects on both sides
  // of every link, and the run heals by session reconnect — same vulnerable
  // set, no respawn storm.
  const auto moduli = make_moduli(220, 20);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 41;
  faults.conn_disconnect_probability = 0.04;
  const util::FaultInjector injector(faults);

  auto config = session_config(3, 2, /*grace_ms=*/5000);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(1000);
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.conn_faults_injected + stats.reconnects, 0u);
  EXPECT_GT(stats.reconnects, 0u);
  EXPECT_EQ(stats.tasks_executed + stats.tasks_resumed, 9u);
}

TEST(ClusterSession, PartitionAndHalfOpenLinksHealWithinGrace) {
  // Timed partitions mute a link without closing it: the heartbeat deadline
  // declares the link lost, the shutdown() wakes the muted peer, and the
  // worker dials back into its session.
  const auto moduli = make_moduli(221, 18);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 43;
  faults.conn_partition_probability = 0.03;
  faults.conn_half_open_probability = 0.03;
  faults.conn_partition_ms = 400;
  const util::FaultInjector injector(faults);

  auto config = session_config(3, 2, /*grace_ms=*/5000);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(1500);
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.conn_faults_injected, 0u);
  EXPECT_EQ(stats.tasks_executed + stats.tasks_resumed, 9u);
}

TEST(ClusterSession, GraceExpiryFallsBackToRespawn) {
  // A SIGKILLed worker cannot dial back: its session must expire after the
  // grace window and the slot respawn within the restart budget.
  const auto moduli = make_moduli(222, 16);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 47;
  faults.sigkill_probability = 0.2;
  const util::FaultInjector injector(faults);

  auto config = session_config(3, 2, /*grace_ms=*/100);
  config.injector = &injector;
  config.task_timeout = std::chrono::milliseconds(600);
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.sigkills_injected, 0u);
  EXPECT_GT(stats.sessions_expired, 0u);
  EXPECT_GT(stats.respawns, 0u);
}

TEST(ClusterStream, SmallChunksStreamPayloadsWithBackpressure) {
  // Tiny chunks force every payload through the windowed go-back-N path;
  // the output must not care.
  const auto moduli = make_moduli(223, 40);
  const auto reference = batchgcd::batch_gcd(moduli);

  auto config = session_config(2, 2, /*grace_ms=*/5000);
  config.stream_chunk_bytes = 64;
  config.stream_window_chunks = 2;
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  // Far more chunk frames than payloads: the payloads were actually split.
  EXPECT_GT(stats.stream_chunks_sent, 2u * 2u * 2u);
  EXPECT_EQ(stats.reconnects, 0u);
}

TEST(ClusterStream, MidStreamDisconnectResumesTransfer) {
  // Disconnects landing inside a chunked transfer: after the reconnect the
  // sender rewinds to the acked prefix (counted as a stream resume) instead
  // of re-shipping or corrupting the payload.
  const auto moduli = make_moduli(224, 40);
  const auto reference = batchgcd::batch_gcd(moduli);

  util::FaultConfig faults;
  faults.seed = 53;
  faults.conn_disconnect_probability = 0.05;
  const util::FaultInjector injector(faults);

  auto config = session_config(2, 2, /*grace_ms=*/5000);
  config.injector = &injector;
  config.stream_chunk_bytes = 64;
  config.stream_window_chunks = 2;
  config.task_timeout = std::chrono::milliseconds(1500);
  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_GT(stats.reconnects, 0u);
  EXPECT_GT(stats.stream_resumes, 0u);
}

// ---------------------------------------------------- remote dial-in e2e ----

TEST(ClusterRemote, DialInWorkersMatchBatchGcd) {
  // workers = 0, remote_workers = 2: the coordinator spawns nothing; this
  // test plays the operator, dialing two gcd_worker processes into the
  // advertised port. Shutdown must reach them (exit 0) and the output must
  // match the single-process reference.
  const auto moduli = make_moduli(225, 20);
  const auto reference = batchgcd::batch_gcd(moduli);

  auto config = session_config(3, 0, /*grace_ms=*/5000);
  config.workers = 0;
  config.remote_workers = 2;
  config.worker_binary.clear();  // nothing to spawn, nothing to validate

  std::vector<pid_t> pids;
  config.on_listen = [&pids](std::uint16_t port) {
    const std::string bin = worker_binary();
    const std::string hostport = "127.0.0.1:" + std::to_string(port);
    for (int i = 0; i < 2; ++i) {
      const std::string id = std::to_string(i);
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        ::execl(bin.c_str(), bin.c_str(), "--connect", hostport.c_str(),
                "--worker-id", id.c_str(), "--session-reconnect",
                "--reconnect-window-ms", "5000", "--keepalive",
                static_cast<char*>(nullptr));
        ::_exit(127);
      }
      pids.push_back(pid);
    }
  };

  ClusterStats stats;
  const auto result = batch_gcd_cluster(moduli, config, &stats);
  EXPECT_EQ(result.divisors, reference.divisors);
  EXPECT_EQ(stats.tasks_executed + stats.tasks_resumed, 9u);

  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status)) << "worker " << pid << " did not exit";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "worker " << pid;
  }
}

}  // namespace
}  // namespace weakkeys::cluster

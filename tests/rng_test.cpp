#include <gtest/gtest.h>

#include <array>

#include "rng/entropy_pool.hpp"
#include "rng/getrandom.hpp"
#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"

namespace weakkeys::rng {
namespace {

std::array<std::uint8_t, 32> draw32(bn::RandomSource& src) {
  std::array<std::uint8_t, 32> out{};
  src.fill(out);
  return out;
}

// -------------------------------------------------------- EntropyPool ----

TEST(EntropyPool, DeterministicForIdenticalMixes) {
  EntropyPool a, b;
  a.mix("same seed", 16);
  b.mix("same seed", 16);
  std::array<std::uint8_t, 64> out_a{}, out_b{};
  a.extract(out_a);
  b.extract(out_b);
  EXPECT_EQ(out_a, out_b);
}

TEST(EntropyPool, DivergesOnDifferentMixes) {
  EntropyPool a, b;
  a.mix("seed one", 16);
  b.mix("seed two", 16);
  std::array<std::uint8_t, 32> out_a{}, out_b{};
  a.extract(out_a);
  b.extract(out_b);
  EXPECT_NE(out_a, out_b);
}

TEST(EntropyPool, SuccessiveExtractsDiffer) {
  EntropyPool pool;
  pool.mix("seed", 16);
  std::array<std::uint8_t, 32> first{}, second{};
  pool.extract(first);
  pool.extract(second);
  EXPECT_NE(first, second);  // anti-backtracking feedback advances state
}

TEST(EntropyPool, EntropyAccountingSaturates) {
  EntropyPool pool;
  EXPECT_FALSE(pool.seeded());
  EXPECT_EQ(pool.entropy_estimate_bits(), 0.0);
  pool.mix_u64(1, 100);
  EXPECT_FALSE(pool.seeded(128));
  pool.mix_u64(2, 100);
  EXPECT_TRUE(pool.seeded(128));
  pool.mix_u64(3, 100);
  EXPECT_EQ(pool.entropy_estimate_bits(), 256.0);  // saturated
}

TEST(EntropyPool, MixOrderMatters) {
  EntropyPool a, b;
  a.mix("x", 8);
  a.mix("y", 8);
  b.mix("y", 8);
  b.mix("x", 8);
  std::array<std::uint8_t, 16> out_a{}, out_b{};
  a.extract(out_a);
  b.extract(out_b);
  EXPECT_NE(out_a, out_b);
}

// ----------------------------------------------------------- clamping ----

TEST(ClampToBits, Bounds) {
  EXPECT_EQ(clamp_to_bits(0xffffffffffffffffULL, 0), 0u);
  EXPECT_EQ(clamp_to_bits(0xffffffffffffffffULL, -3), 0u);
  EXPECT_EQ(clamp_to_bits(0xffffffffffffffffULL, 8), 0xffu);
  EXPECT_EQ(clamp_to_bits(0x1234ULL, 64), 0x1234ULL);
  EXPECT_EQ(clamp_to_bits(0x1234ULL, 4), 0x4ULL);
}

// ----------------------------------------------------- SimulatedUrandom ----

TEST(SimulatedUrandom, BootCollisionMeansIdenticalStreams) {
  const RngFlawModel flaw{.boot_entropy_bits = 4, .divergence_entropy_bits = 40};
  // Raw boot draws differ but collide after clamping to 4 bits.
  SimulatedUrandom a("fw-1.0", flaw, 0x03, 111);
  SimulatedUrandom b("fw-1.0", flaw, 0xf3, 222);
  EXPECT_EQ(draw32(a), draw32(b));
}

TEST(SimulatedUrandom, DivergenceEventSplitsCollidedStreams) {
  const RngFlawModel flaw{.boot_entropy_bits = 4, .divergence_entropy_bits = 40};
  SimulatedUrandom a("fw-1.0", flaw, 3, 111);
  SimulatedUrandom b("fw-1.0", flaw, 3, 222);
  EXPECT_EQ(draw32(a), draw32(b));  // same up to the event
  a.stir_divergence_event();
  b.stir_divergence_event();
  EXPECT_NE(draw32(a), draw32(b));  // diverged afterwards
}

TEST(SimulatedUrandom, NoStirModelStaysIdentical) {
  const RngFlawModel flaw{.boot_entropy_bits = 4, .divergence_entropy_bits = -1};
  EXPECT_FALSE(flaw.stirs_between_primes());
  SimulatedUrandom a("fw-1.0", flaw, 3, 111);
  SimulatedUrandom b("fw-1.0", flaw, 3, 222);
  a.stir_divergence_event();  // no-op
  b.stir_divergence_event();
  EXPECT_EQ(draw32(a), draw32(b));  // identical keys forever (default certs)
}

TEST(SimulatedUrandom, DifferentFirmwareTagsDiverge) {
  const RngFlawModel flaw{.boot_entropy_bits = 0, .divergence_entropy_bits = 40};
  SimulatedUrandom a("fw-1.0", flaw, 0, 0);
  SimulatedUrandom b("fw-2.0", flaw, 0, 0);
  EXPECT_NE(draw32(a), draw32(b));
}

TEST(SimulatedUrandom, HealthyBootEntropyRarelyCollides) {
  const RngFlawModel flaw{.boot_entropy_bits = 64, .divergence_entropy_bits = 40};
  SimulatedUrandom a("fw-1.0", flaw, 12345, 0);
  SimulatedUrandom b("fw-1.0", flaw, 67890, 0);
  EXPECT_NE(draw32(a), draw32(b));
}

TEST(SimulatedUrandom, MultipleStirEventsKeepDiverging) {
  const RngFlawModel flaw{.boot_entropy_bits = 2, .divergence_entropy_bits = 44};
  SimulatedUrandom a("fw-1.0", flaw, 1, 5);
  SimulatedUrandom b("fw-1.0", flaw, 1, 5);
  // Same divergence seed: still identical after one stir...
  a.stir_divergence_event();
  b.stir_divergence_event();
  EXPECT_EQ(draw32(a), draw32(b));
  // ...and after another (deterministic per-device event stream).
  a.stir_divergence_event();
  b.stir_divergence_event();
  EXPECT_EQ(draw32(a), draw32(b));
}

// ----------------------------------------------------- GetrandomSource ----

TEST(GetrandomSource, BlocksUntilSeededThenDiverges) {
  // Two devices boot into the SAME deterministic pool state — the exact
  // situation that produced shared primes under the old urandom. With
  // getrandom semantics, each gathers fresh (device-unique) entropy before
  // any output, so their streams differ.
  auto make = [](std::uint64_t unique) {
    EntropyPool boot_pool;
    boot_pool.mix("firmware:model-x", 0.0);  // zero credited entropy
    return GetrandomSource(
        boot_pool, [unique, n = 0](EntropyPool& pool) mutable {
          pool.mix_u64(unique + static_cast<std::uint64_t>(n++), 64.0);
        });
  };
  GetrandomSource a = make(0x1111), b = make(0x2222);
  std::array<std::uint8_t, 32> out_a{}, out_b{};
  a.fill(out_a);
  b.fill(out_b);
  EXPECT_TRUE(a.ever_blocked());
  EXPECT_TRUE(b.ever_blocked());
  EXPECT_NE(out_a, out_b);
}

TEST(GetrandomSource, SeededPoolNeverBlocks) {
  EntropyPool pool;
  pool.mix("plenty of entropy", 256.0);
  GetrandomSource src(pool, [](EntropyPool&) { FAIL() << "must not gather"; });
  std::array<std::uint8_t, 16> out{};
  src.fill(out);
  EXPECT_FALSE(src.ever_blocked());
}

TEST(GetrandomSource, RequiresGatherer) {
  EXPECT_THROW(GetrandomSource(EntropyPool{}, nullptr), std::invalid_argument);
}

TEST(GetrandomSource, StalledGathererDetected) {
  EntropyPool pool;  // unseeded
  GetrandomSource src(pool, [](EntropyPool& p) { p.mix("x", 0.0); });
  std::array<std::uint8_t, 8> out{};
  EXPECT_THROW(src.fill(out), std::runtime_error);
}

TEST(GetrandomSource, GathersUntilThreshold) {
  EntropyPool pool;
  int calls = 0;
  GetrandomSource src(pool, [&calls](EntropyPool& p) {
    ++calls;
    p.mix_u64(static_cast<std::uint64_t>(calls), 32.0);
  });
  std::array<std::uint8_t, 8> out{};
  src.fill(out);
  EXPECT_EQ(calls, 4);  // 4 x 32 bits to reach the 128-bit threshold
  src.fill(out);
  EXPECT_EQ(calls, 4);  // seeded: no further gathering
}

// -------------------------------------------------------- PrngSource ----

TEST(PrngRandomSource, DeterministicBySeed) {
  PrngRandomSource a(9), b(9), c(10);
  const auto va = draw32(a);
  EXPECT_EQ(va, draw32(b));
  EXPECT_NE(va, draw32(c));
}

TEST(PrngRandomSource, FillsOddSizes) {
  PrngRandomSource src(1);
  std::array<std::uint8_t, 5> buf{};
  src.fill(buf);
  std::array<std::uint8_t, 5> zero{};
  EXPECT_NE(buf, zero);  // overwhelmingly likely
}

}  // namespace
}  // namespace weakkeys::rng

// End-to-end telemetry test: a noisy, fault-injected Study::run() must
// produce metrics that agree *exactly* with the pipeline's own accounting
// structs (IngestStats, CoordinatorStats), a span for every pipeline stage
// plus at least one per remainder-tree task, and valid trace/metrics JSON
// files via StudyConfig::trace_path — all with a null text log, proving the
// sink's always-counted guarantee.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "batchgcd/coordinator.hpp"
#include "core/ingest.hpp"
#include "core/study.hpp"
#include "json_lite.hpp"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#define WEAKKEYS_TEST_SOCKETS 1
#endif

namespace weakkeys {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class TelemetryE2E : public ::testing::Test {
 protected:
  static core::StudyConfig noisy_config() {
    core::StudyConfig config;
    config.sim.seed = 424;
    config.sim.scale = 0.01;
    config.sim.miller_rabin_rounds = 4;
    config.batch_gcd_subsets = 4;  // 16 remainder-tree tasks
    config.threads = 4;
    config.cache_path.clear();  // always simulate + factor from scratch
    config.fault_tolerant = true;
    config.faults.seed = 7;
    config.faults.crash_probability = 0.25;
    config.faults.straggle_probability = 0.10;
    config.faults.corrupt_probability = 0.25;
    config.faults.tree_loss_probability = 0.10;
    config.noise.seed = 99;
    config.noise.truncated_rate = 0.01;
    config.noise.bitflip_rate = 0.01;
    config.noise.zero_modulus_rate = 0.005;
    config.noise.even_modulus_rate = 0.005;
    config.noise.tiny_modulus_rate = 0.005;
    config.noise.bad_exponent_rate = 0.005;
    config.noise.inverted_validity_rate = 0.005;
    config.noise.duplicate_serial_rate = 0.005;
    // config.log stays null on purpose: events must still be counted.
    config.trace_path =
        "telemetry_e2e_" + std::to_string(::getpid()) + ".json";
    return config;
  }
};

TEST_F(TelemetryE2E, NoisyFaultInjectedRunTelemetryMatchesPipelineStats) {
  const core::StudyConfig config = noisy_config();
  core::Study study(config);
  study.run();
  const auto snap = study.telemetry().metrics().snapshot();

  // --- ingest counters agree exactly with IngestStats -------------------
  const core::IngestStats& ingest = study.ingest_stats();
  EXPECT_GT(ingest.records_quarantined, 0u);  // the noise actually landed
  EXPECT_EQ(snap.counter("ingest.records_seen"), ingest.records_seen);
  EXPECT_EQ(snap.counter("ingest.records_kept"), ingest.records_kept);
  EXPECT_EQ(snap.counter("ingest.records_quarantined"),
            ingest.records_quarantined);
  EXPECT_EQ(snap.counter("ingest.raw_records"), ingest.raw_records);
  EXPECT_EQ(snap.counter("ingest.raw_recovered"), ingest.raw_recovered);
  EXPECT_EQ(snap.counter("ingest.degenerate_moduli"),
            ingest.degenerate_moduli);
  std::uint64_t drop_total = 0;
  for (std::size_t i = 0; i < core::kQuarantineReasonCount; ++i) {
    const auto reason = static_cast<core::QuarantineReason>(i);
    const std::uint64_t counted =
        snap.counter(std::string("ingest.drop.") + core::to_string(reason));
    EXPECT_EQ(counted, ingest.by_reason[i]) << core::to_string(reason);
    drop_total += counted;
  }
  EXPECT_EQ(drop_total, ingest.records_quarantined);
  EXPECT_EQ(snap.counter("noise.records_injected"),
            study.noise_summary().total());
  EXPECT_GT(study.noise_summary().total(), 0u);

  // --- coordinator counters agree exactly with CoordinatorStats ---------
  const batchgcd::CoordinatorStats& coord = study.coordinator_stats();
  EXPECT_GT(coord.attempts, 0u);
  EXPECT_GT(coord.retries, 0u);  // the fault injection actually bit
  EXPECT_EQ(snap.counter("coordinator.attempts"), coord.attempts);
  EXPECT_EQ(snap.counter("coordinator.retries"), coord.retries);
  EXPECT_EQ(snap.counter("coordinator.crashes"), coord.crashes);
  EXPECT_EQ(snap.counter("coordinator.stragglers_killed"),
            coord.stragglers_killed);
  EXPECT_EQ(snap.counter("coordinator.corruptions_caught"),
            coord.corruptions_caught);
  EXPECT_EQ(snap.counter("coordinator.trees_rebuilt"), coord.trees_rebuilt);
  EXPECT_EQ(snap.counter("coordinator.tasks_resumed"), coord.tasks_resumed);
  EXPECT_EQ(snap.counter("coordinator.tasks_executed"),
            coord.tasks_executed);
  // Per-worker counters partition the global ones.
  std::uint64_t worker_attempts = 0;
  for (std::size_t w = 0; w < config.threads; ++w) {
    worker_attempts += snap.counter("coordinator.worker." +
                                    std::to_string(w) + ".attempts");
  }
  EXPECT_EQ(worker_attempts, coord.attempts);
  // One latency sample per attempt (failed attempts have latencies too).
  EXPECT_EQ(snap.histograms.at("coordinator.task_us").count, coord.attempts);

  // --- factor counters agree with FactorStats ---------------------------
  EXPECT_EQ(snap.counter("factor.distinct_moduli"),
            study.factor_stats().distinct_moduli);
  EXPECT_EQ(snap.counter("factor.factored_moduli"), study.factored().size());

  // --- every pipeline stage has a span; one per task attempt ------------
  std::map<std::string, std::size_t> span_counts;
  for (const auto& e : study.telemetry().tracer().events()) {
    ++span_counts[e.name];
  }
  for (const char* stage :
       {"study.run", "study.build_dataset", "study.simulate",
        "study.apply_noise", "study.ingest", "study.exclude_intermediates",
        "study.factor_moduli", "gcd.coordinated", "gcd.build_trees",
        "gcd.task", "study.classify_divisors", "study.second_pass",
        "study.triage_degenerate", "study.fingerprint",
        "fingerprint.cliques", "fingerprint.subject_labels",
        "fingerprint.prime_pools", "fingerprint.extrapolate",
        "fingerprint.mitm", "sim.scan"}) {
    EXPECT_GE(span_counts[stage], 1u) << "missing span: " << stage;
  }
  // One gcd.task span per attempt >= one per executed remainder-tree task.
  EXPECT_EQ(span_counts["gcd.task"], coord.attempts);
  EXPECT_GE(span_counts["gcd.task"], coord.tasks_executed);

  // --- trace files written via trace_path, both valid JSON --------------
  const std::string trace_text = slurp(config.trace_path);
  const std::string metrics_text = slurp(config.trace_path + ".metrics.json");
  ASSERT_FALSE(trace_text.empty());
  ASSERT_FALSE(metrics_text.empty());
  const auto trace = testjson::parse(trace_text);
  const auto metrics = testjson::parse(metrics_text);
  const auto& trace_events = trace.at("traceEvents").array();
  EXPECT_GE(trace_events.size(), span_counts.size());
  std::map<std::int64_t, double> last_ts;
  for (const auto& e : trace_events) {
    EXPECT_EQ(e.at("ph").str(), "X");
    const std::int64_t tid = e.at("tid").integer();
    const double ts = e.at("ts").number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[tid] = ts;
  }
  EXPECT_EQ(metrics.at("counters").at("coordinator.retries").integer(),
            static_cast<std::int64_t>(coord.retries));

  // --- null text log, yet the sink counted and retained events ----------
  EXPECT_GT(study.telemetry().sink().total_events(), 0u);
  EXPECT_FALSE(study.telemetry().sink().recent().empty());

  std::remove(config.trace_path.c_str());
  std::remove((config.trace_path + ".metrics.json").c_str());
}

// A fault-injected coordinated run with the live monitor on must leave a
// JSONL time series whose final snapshot carries the registry's exact
// end-of-run totals, and whose per-worker commit counters sum to the
// coordinator's executed-task total.
TEST_F(TelemetryE2E, MonitoredRunTimeSeriesClosesOnFinalTotals) {
  core::StudyConfig config = noisy_config();
  config.trace_path.clear();
  config.monitor_path =
      "telemetry_e2e_monitor_" + std::to_string(::getpid()) + ".jsonl";
  config.monitor_interval = std::chrono::milliseconds(10);
  core::Study study(config);
  study.run();

  ASSERT_NE(study.monitor(), nullptr);
  EXPECT_FALSE(study.monitor()->running());  // run() closed the series
  EXPECT_GE(study.monitor()->snapshots_written(), 3u);

  std::ifstream in(config.monitor_path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::string last_line;
  std::uint64_t lines = 0;
  std::int64_t last_seq = -1;
  while (std::getline(in, line)) {
    ++lines;
    const auto doc = jsonlite::parse(line);  // every snapshot parses
    EXPECT_GT(doc.at("seq").integer(), last_seq);
    last_seq = doc.at("seq").integer();
    last_line = line;
  }
  EXPECT_EQ(lines, study.monitor()->snapshots_written());
  ASSERT_GE(lines, 3u);

  // The closing snapshot is final and matches the end-of-run registry
  // exactly: same counter names, same values, nothing extra.
  const auto final_doc = jsonlite::parse(last_line);
  EXPECT_TRUE(final_doc.at("final").boolean());
  const auto end_state = study.telemetry().metrics().snapshot();
  const auto& counters = final_doc.at("counters").object();
  EXPECT_EQ(counters.size(), end_state.counters.size());
  for (const auto& [name, value] : end_state.counters) {
    ASSERT_TRUE(final_doc.at("counters").has(name)) << name;
    EXPECT_EQ(final_doc.at("counters").at(name).integer(),
              static_cast<std::int64_t>(value))
        << name;
  }

  // Per-worker commit counters partition the executed-task total, and the
  // coordinator's task total matches k^2.
  const batchgcd::CoordinatorStats& coord = study.coordinator_stats();
  EXPECT_EQ(end_state.counter("coordinator.tasks"), coord.tasks);
  EXPECT_EQ(end_state.counter("coordinator.subsets"), coord.subsets);
  std::uint64_t committed = 0;
  for (std::size_t w = 0; w < config.threads; ++w) {
    committed += end_state.counter("coordinator.worker." + std::to_string(w) +
                                   ".tasks_committed");
  }
  EXPECT_EQ(committed, coord.tasks_executed);
  EXPECT_EQ(end_state.counter("coordinator.tasks_executed") +
                end_state.counter("coordinator.tasks_resumed"),
            coord.tasks);

  // The monitor sampled process self-metrics along the way.
#if defined(__linux__)
  EXPECT_GT(end_state.gauges.at("process.rss_kb"), 0);
#endif

  std::remove(config.monitor_path.c_str());
}

#if defined(WEAKKEYS_TEST_SOCKETS)

namespace {

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const std::string request =
        "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0) ==
        static_cast<ssize_t>(request.size())) {
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
      }
    }
  }
  ::close(fd);
  return response;
}

}  // namespace

// /metrics is scrapeable while run() executes on another thread, and the
// server survives the end of the run with the full metric families.
TEST_F(TelemetryE2E, StatusServerServesPrometheusDuringRun) {
  core::StudyConfig config = noisy_config();
  config.trace_path.clear();
  config.status_port = 0;  // ephemeral: parallel ctest never collides
  core::Study study(config);

  std::thread runner([&study] { study.run(); });
  int port = -1;
  for (int i = 0; i < 500 && port <= 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    port = study.status_port();
  }
  ASSERT_GT(port, 0) << "status server never came up";

  // Mid-run scrape: valid exposition. The server comes up before the first
  // pipeline instrument exists, so poll until some family appears (the
  // server outlives the run, so this converges even on a very fast run).
  std::string mid_run;
  for (int i = 0; i < 2000; ++i) {
    mid_run = http_get(port, "/metrics");
    if (mid_run.find("# TYPE weakkeys_") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(mid_run.rfind("HTTP/1.0 200", 0), 0u);
  EXPECT_NE(mid_run.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(mid_run.find("# TYPE weakkeys_"), std::string::npos);
  runner.join();

  // Post-run the server is still up and exposes every family the pipeline
  // touched.
  const std::string text = http_get(port, "/metrics");
  EXPECT_EQ(text.rfind("HTTP/1.0 200", 0), 0u);
  for (const char* family :
       {"weakkeys_ingest_records_seen", "weakkeys_coordinator_attempts",
        "weakkeys_threadpool_tasks_completed",
        "weakkeys_coordinator_task_us_bucket{le=\"+Inf\"}",
        "weakkeys_coordinator_task_us_p99"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }

  const std::string status = http_get(port, "/status");
  const auto pos = status.find("\r\n\r\n");
  ASSERT_NE(pos, std::string::npos);
  const auto doc = jsonlite::parse(status.substr(pos + 4));
  EXPECT_EQ(doc.at("pid").integer(), ::getpid());
  EXPECT_GT(doc.at("metrics").at("counters").at("coordinator.attempts")
                .integer(),
            0);
}

#endif  // WEAKKEYS_TEST_SOCKETS

// Regression test for silent telemetry loss: a run that dies mid-pipeline
// (every attempt crash-faulted until max_attempts) must still flush the
// trace, the metrics snapshot, and a final monitor line.
TEST_F(TelemetryE2E, AbnormalRunEndStillFlushesTelemetryArtifacts) {
  core::StudyConfig config = noisy_config();
  config.faults.crash_probability = 1.0;  // no task can ever succeed
  config.faults.straggle_probability = 0.0;
  config.faults.corrupt_probability = 0.0;
  config.faults.tree_loss_probability = 0.0;
  config.trace_path =
      "telemetry_e2e_abnormal_" + std::to_string(::getpid()) + ".json";
  config.monitor_path = config.trace_path + ".monitor.jsonl";
  config.monitor_interval = std::chrono::milliseconds(5);

  {
    core::Study study(config);
    EXPECT_THROW(study.run(), batchgcd::CoordinatorError);
    // The failed run still closed its artifacts on the way out.
  }

  const std::string trace_text = slurp(config.trace_path);
  const std::string metrics_text = slurp(config.trace_path + ".metrics.json");
  ASSERT_FALSE(trace_text.empty());
  ASSERT_FALSE(metrics_text.empty());
  const auto metrics = jsonlite::parse(metrics_text);
  EXPECT_GT(metrics.at("counters").at("coordinator.crashes").integer(), 0);
  EXPECT_TRUE(jsonlite::parse(trace_text).has("traceEvents"));

  const std::string series = slurp(config.monitor_path);
  ASSERT_FALSE(series.empty());
  const std::string last_line =
      series.substr(series.rfind('\n', series.size() - 2) + 1);
  const auto final_doc = jsonlite::parse(last_line);
  EXPECT_TRUE(final_doc.at("final").boolean());
  EXPECT_GT(final_doc.at("counters").at("coordinator.crashes").integer(), 0);

  std::remove(config.trace_path.c_str());
  std::remove((config.trace_path + ".metrics.json").c_str());
  std::remove(config.monitor_path.c_str());
}

}  // namespace
}  // namespace weakkeys

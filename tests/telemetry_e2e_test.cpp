// End-to-end telemetry test: a noisy, fault-injected Study::run() must
// produce metrics that agree *exactly* with the pipeline's own accounting
// structs (IngestStats, CoordinatorStats), a span for every pipeline stage
// plus at least one per remainder-tree task, and valid trace/metrics JSON
// files via StudyConfig::trace_path — all with a null text log, proving the
// sink's always-counted guarantee.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "core/ingest.hpp"
#include "core/study.hpp"
#include "json_lite.hpp"

namespace weakkeys {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class TelemetryE2E : public ::testing::Test {
 protected:
  static core::StudyConfig noisy_config() {
    core::StudyConfig config;
    config.sim.seed = 424;
    config.sim.scale = 0.01;
    config.sim.miller_rabin_rounds = 4;
    config.batch_gcd_subsets = 4;  // 16 remainder-tree tasks
    config.threads = 4;
    config.cache_path.clear();  // always simulate + factor from scratch
    config.fault_tolerant = true;
    config.faults.seed = 7;
    config.faults.crash_probability = 0.25;
    config.faults.straggle_probability = 0.10;
    config.faults.corrupt_probability = 0.25;
    config.faults.tree_loss_probability = 0.10;
    config.noise.seed = 99;
    config.noise.truncated_rate = 0.01;
    config.noise.bitflip_rate = 0.01;
    config.noise.zero_modulus_rate = 0.005;
    config.noise.even_modulus_rate = 0.005;
    config.noise.tiny_modulus_rate = 0.005;
    config.noise.bad_exponent_rate = 0.005;
    config.noise.inverted_validity_rate = 0.005;
    config.noise.duplicate_serial_rate = 0.005;
    // config.log stays null on purpose: events must still be counted.
    config.trace_path =
        "telemetry_e2e_" + std::to_string(::getpid()) + ".json";
    return config;
  }
};

TEST_F(TelemetryE2E, NoisyFaultInjectedRunTelemetryMatchesPipelineStats) {
  const core::StudyConfig config = noisy_config();
  core::Study study(config);
  study.run();
  const auto snap = study.telemetry().metrics().snapshot();

  // --- ingest counters agree exactly with IngestStats -------------------
  const core::IngestStats& ingest = study.ingest_stats();
  EXPECT_GT(ingest.records_quarantined, 0u);  // the noise actually landed
  EXPECT_EQ(snap.counter("ingest.records_seen"), ingest.records_seen);
  EXPECT_EQ(snap.counter("ingest.records_kept"), ingest.records_kept);
  EXPECT_EQ(snap.counter("ingest.records_quarantined"),
            ingest.records_quarantined);
  EXPECT_EQ(snap.counter("ingest.raw_records"), ingest.raw_records);
  EXPECT_EQ(snap.counter("ingest.raw_recovered"), ingest.raw_recovered);
  EXPECT_EQ(snap.counter("ingest.degenerate_moduli"),
            ingest.degenerate_moduli);
  std::uint64_t drop_total = 0;
  for (std::size_t i = 0; i < core::kQuarantineReasonCount; ++i) {
    const auto reason = static_cast<core::QuarantineReason>(i);
    const std::uint64_t counted =
        snap.counter(std::string("ingest.drop.") + core::to_string(reason));
    EXPECT_EQ(counted, ingest.by_reason[i]) << core::to_string(reason);
    drop_total += counted;
  }
  EXPECT_EQ(drop_total, ingest.records_quarantined);
  EXPECT_EQ(snap.counter("noise.records_injected"),
            study.noise_summary().total());
  EXPECT_GT(study.noise_summary().total(), 0u);

  // --- coordinator counters agree exactly with CoordinatorStats ---------
  const batchgcd::CoordinatorStats& coord = study.coordinator_stats();
  EXPECT_GT(coord.attempts, 0u);
  EXPECT_GT(coord.retries, 0u);  // the fault injection actually bit
  EXPECT_EQ(snap.counter("coordinator.attempts"), coord.attempts);
  EXPECT_EQ(snap.counter("coordinator.retries"), coord.retries);
  EXPECT_EQ(snap.counter("coordinator.crashes"), coord.crashes);
  EXPECT_EQ(snap.counter("coordinator.stragglers_killed"),
            coord.stragglers_killed);
  EXPECT_EQ(snap.counter("coordinator.corruptions_caught"),
            coord.corruptions_caught);
  EXPECT_EQ(snap.counter("coordinator.trees_rebuilt"), coord.trees_rebuilt);
  EXPECT_EQ(snap.counter("coordinator.tasks_resumed"), coord.tasks_resumed);
  EXPECT_EQ(snap.counter("coordinator.tasks_executed"),
            coord.tasks_executed);
  // Per-worker counters partition the global ones.
  std::uint64_t worker_attempts = 0;
  for (std::size_t w = 0; w < config.threads; ++w) {
    worker_attempts += snap.counter("coordinator.worker." +
                                    std::to_string(w) + ".attempts");
  }
  EXPECT_EQ(worker_attempts, coord.attempts);
  // One latency sample per attempt (failed attempts have latencies too).
  EXPECT_EQ(snap.histograms.at("coordinator.task_us").count, coord.attempts);

  // --- factor counters agree with FactorStats ---------------------------
  EXPECT_EQ(snap.counter("factor.distinct_moduli"),
            study.factor_stats().distinct_moduli);
  EXPECT_EQ(snap.counter("factor.factored_moduli"), study.factored().size());

  // --- every pipeline stage has a span; one per task attempt ------------
  std::map<std::string, std::size_t> span_counts;
  for (const auto& e : study.telemetry().tracer().events()) {
    ++span_counts[e.name];
  }
  for (const char* stage :
       {"study.run", "study.build_dataset", "study.simulate",
        "study.apply_noise", "study.ingest", "study.exclude_intermediates",
        "study.factor_moduli", "gcd.coordinated", "gcd.build_trees",
        "gcd.task", "study.classify_divisors", "study.second_pass",
        "study.triage_degenerate", "study.fingerprint",
        "fingerprint.cliques", "fingerprint.subject_labels",
        "fingerprint.prime_pools", "fingerprint.extrapolate",
        "fingerprint.mitm", "sim.scan"}) {
    EXPECT_GE(span_counts[stage], 1u) << "missing span: " << stage;
  }
  // One gcd.task span per attempt >= one per executed remainder-tree task.
  EXPECT_EQ(span_counts["gcd.task"], coord.attempts);
  EXPECT_GE(span_counts["gcd.task"], coord.tasks_executed);

  // --- trace files written via trace_path, both valid JSON --------------
  const std::string trace_text = slurp(config.trace_path);
  const std::string metrics_text = slurp(config.trace_path + ".metrics.json");
  ASSERT_FALSE(trace_text.empty());
  ASSERT_FALSE(metrics_text.empty());
  const auto trace = testjson::parse(trace_text);
  const auto metrics = testjson::parse(metrics_text);
  const auto& trace_events = trace.at("traceEvents").array();
  EXPECT_GE(trace_events.size(), span_counts.size());
  std::map<std::int64_t, double> last_ts;
  for (const auto& e : trace_events) {
    EXPECT_EQ(e.at("ph").str(), "X");
    const std::int64_t tid = e.at("tid").integer();
    const double ts = e.at("ts").number();
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[tid] = ts;
  }
  EXPECT_EQ(metrics.at("counters").at("coordinator.retries").integer(),
            static_cast<std::int64_t>(coord.retries));

  // --- null text log, yet the sink counted and retained events ----------
  EXPECT_GT(study.telemetry().sink().total_events(), 0u);
  EXPECT_FALSE(study.telemetry().sink().recent().empty());

  std::remove(config.trace_path.c_str());
  std::remove((config.trace_path + ".metrics.json").c_str());
}

}  // namespace
}  // namespace weakkeys

// Differential tests: BigInt against GMP as an oracle. GMP is linked by the
// tests only — the library itself is self-contained.
#include <gmp.h>
#include <gtest/gtest.h>

#include <string>

#include "bn/bigint.hpp"
#include "util/prng.hpp"

namespace weakkeys::bn {
namespace {

class Mpz {
 public:
  Mpz() { mpz_init(v); }
  explicit Mpz(const std::string& hex) { mpz_init_set_str(v, hex.c_str(), 16); }
  ~Mpz() { mpz_clear(v); }
  Mpz(const Mpz&) = delete;
  Mpz& operator=(const Mpz&) = delete;

  [[nodiscard]] std::string hex() const {
    char* s = mpz_get_str(nullptr, 16, v);
    std::string out = s;
    free(s);  // NOLINT: GMP allocates with malloc
    return out;
  }

  mpz_t v;
};

class GmpDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  GmpDifferential() : rng_(GetParam()) { gmp_randinit_default(state_); }
  ~GmpDifferential() override { gmp_randclear(state_); }

  /// A random value of up to max_bits, materialized on both sides.
  std::pair<BigInt, std::string> draw(std::size_t max_bits) {
    Mpz m;
    mpz_urandomb(m.v, state_, 1 + rng_.below(max_bits));
    const std::string hex = m.hex();
    return {BigInt::from_hex(hex), hex};
  }

  util::Xoshiro256 rng_;
  gmp_randstate_t state_;
};

TEST_P(GmpDifferential, MulDivModAgree) {
  for (int iter = 0; iter < 40; ++iter) {
    const auto [a, ah] = draw(6000);
    auto [b, bh] = draw(3000);
    if (b.is_zero()) b = BigInt(1);
    Mpz A(ah), B(b.to_hex()), R;

    mpz_mul(R.v, A.v, B.v);
    EXPECT_EQ((a * b).to_hex(), R.hex());

    Mpz Q, Rem;
    mpz_tdiv_qr(Q.v, Rem.v, A.v, B.v);
    const auto dm = BigInt::divmod(a, b);
    EXPECT_EQ(dm.quotient.to_hex(), Q.hex());
    EXPECT_EQ(dm.remainder.to_hex(), Rem.hex());
  }
}

TEST_P(GmpDifferential, AddSubAgree) {
  for (int iter = 0; iter < 60; ++iter) {
    const auto [a, ah] = draw(4000);
    const auto [b, bh] = draw(4000);
    Mpz A(ah), B(bh), R;
    mpz_add(R.v, A.v, B.v);
    EXPECT_EQ((a + b).to_hex(), R.hex());
    mpz_sub(R.v, A.v, B.v);
    std::string expected = R.hex();
    EXPECT_EQ((a - b).to_hex(), expected);
  }
}

TEST_P(GmpDifferential, GcdAgrees) {
  for (int iter = 0; iter < 40; ++iter) {
    const auto [a, ah] = draw(2000);
    const auto [b, bh] = draw(2000);
    Mpz A(ah), B(bh), R;
    mpz_gcd(R.v, A.v, B.v);
    EXPECT_EQ(gcd(a, b).to_hex(), R.hex());
  }
}

TEST_P(GmpDifferential, ModPowAgrees) {
  for (int iter = 0; iter < 15; ++iter) {
    const auto [a, ah] = draw(400);
    const auto [e, eh] = draw(200);
    auto [m, mh] = draw(300);
    if (m.is_zero()) m = BigInt(7);
    Mpz A(ah), E(eh), M(m.to_hex()), R;
    mpz_powm(R.v, A.v, E.v, M.v);
    EXPECT_EQ(mod_pow(a, e, m).to_hex(), R.hex());
  }
}

TEST_P(GmpDifferential, HugeOperandsAgree) {
  // Forces the Karatsuba and Newton-division paths.
  const auto [a, ah] = draw(400000);
  auto [b, bh] = draw(150000);
  if (b.is_zero()) b = BigInt(1);
  Mpz A(ah), B(b.to_hex()), R;
  mpz_mul(R.v, A.v, B.v);
  EXPECT_EQ((a * b).to_hex(), R.hex());
  Mpz Q, Rem;
  mpz_tdiv_qr(Q.v, Rem.v, A.v, B.v);
  const auto dm = BigInt::divmod(a, b);
  EXPECT_EQ(dm.quotient.to_hex(), Q.hex());
  EXPECT_EQ(dm.remainder.to_hex(), Rem.hex());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GmpDifferential,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace weakkeys::bn

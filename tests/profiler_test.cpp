// Tests for the resource-attribution plane (DESIGN.md §5k): the per-thread
// frame stacks, the sampling wall-clock profiler and its collapsed-stack
// output, per-subsystem memory accounting with the soft budget alarm, and
// the TrackedArena-backed product-tree byte census.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "batchgcd/product_tree.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/prof_stack.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/tracked_arena.hpp"

namespace weakkeys {
namespace {

using bn::BigInt;

// ---------------------------------------------------------- prof stacks ----

TEST(ProfStack, OffByDefaultFramesAreInert) {
  ASSERT_FALSE(obs::prof::enabled());
  {
    obs::prof::Frame frame("should.not.appear");
    obs::prof::Frame nested("also.not");
    for (const auto& stack : obs::prof::sample_all_stacks()) {
      for (const char* label : stack) {
        EXPECT_STRNE(label, "should.not.appear");
        EXPECT_STRNE(label, "also.not");
      }
    }
  }
}

TEST(ProfStack, PushPopVisibleToSampler) {
  obs::prof::set_enabled(true);
  {
    obs::prof::Frame outer("test.outer");
    obs::prof::Frame inner("test.inner");
    bool found = false;
    for (const auto& stack : obs::prof::sample_all_stacks()) {
      if (stack.size() >= 2 && std::string(stack[stack.size() - 2]) ==
                                   "test.outer" &&
          std::string(stack.back()) == "test.inner") {
        found = true;
      }
    }
    EXPECT_TRUE(found);
    EXPECT_GE(obs::prof::registered_threads(), 1u);
  }
  obs::prof::set_enabled(false);
  // Popped cleanly: this thread contributes no stack anymore.
  for (const auto& stack : obs::prof::sample_all_stacks()) {
    for (const char* label : stack) {
      EXPECT_STRNE(label, "test.outer");
    }
  }
}

TEST(ProfStack, InternIsIdempotent) {
  const char* a = obs::prof::intern("some.span.name");
  const char* b = obs::prof::intern("some.span.name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "some.span.name");
}

// ------------------------------------------------------------- profiler ----

/// Parses collapsed-stack text ("frame;frame count\n") and returns the
/// total sample count, failing the test on any malformed line.
std::uint64_t parse_collapsed(const std::string& text) {
  std::uint64_t total = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "no count in: " << line;
    if (space == std::string::npos) continue;
    EXPECT_GT(space, 0u) << "empty stack in: " << line;
    const std::string stack = line.substr(0, space);
    EXPECT_FALSE(stack.empty());
    EXPECT_NE(stack.front(), ';') << "empty leading frame in: " << line;
    EXPECT_NE(stack.back(), ';') << "empty trailing frame in: " << line;
    total += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  return total;
}

TEST(Profiler, SamplesSpanChurnIntoParseableCollapsedStacks) {
  obs::Telemetry telemetry(/*tracing_enabled=*/true);
  std::string written_path;
  std::string written_body;
  obs::ProfilerConfig config;
  config.hz = 997;  // fast cadence so the test finishes quickly
  config.out_path = "profiler_test.folded";
  config.registry = &telemetry.metrics();
  config.writer = [&](const std::string& path, const std::string& body) {
    written_path = path;
    written_body = body;
    return true;
  };
  obs::Profiler profiler(std::move(config));
  profiler.start();
  EXPECT_TRUE(profiler.running());

  // Churn: worker threads create and destroy nested spans while the
  // sampler snapshots their stacks; TSan builds exercise the lock-free
  // stack protocol here.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&telemetry, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::Span outer = telemetry.tracer().span("churn.outer");
        obs::Span inner = telemetry.tracer().span("churn.inner");
      }
    });
  }
  {
    // A long-lived frame the sampler is guaranteed to catch.
    obs::prof::Frame frame("churn.main");
    while (profiler.ticks() < 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(obs::prof::enabled());  // stop() switches collection off

  EXPECT_GE(profiler.ticks(), 20u);
  EXPECT_GT(profiler.samples(), 0u);
  // The writer received the same aggregate collapsed() reports, and the
  // per-line counts sum exactly to the sample counter.
  EXPECT_EQ(written_path, "profiler_test.folded");
  EXPECT_EQ(written_body, profiler.collapsed());
  EXPECT_EQ(parse_collapsed(written_body), profiler.samples());
  EXPECT_NE(written_body.find("churn.main"), std::string::npos);

  // Registry rollups: tick/sample counters plus self-time counters that
  // also sum to the sample count.
  const obs::MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.counter("profiler.ticks"), profiler.ticks());
  EXPECT_EQ(snap.counter("profiler.samples"), profiler.samples());
  std::uint64_t self_total = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("profiler.self.", 0) == 0) self_total += value;
  }
  EXPECT_EQ(self_total, profiler.samples());

  // Ranked self times agree with the raw counters.
  const auto top = profiler.self_times(3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(snap.counter("profiler.self." + top[0].first), top[0].second);
}

TEST(Profiler, ZeroHzNeverStarts) {
  obs::ProfilerConfig config;
  config.hz = 0;
  obs::Profiler profiler(std::move(config));
  profiler.start();
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(obs::prof::enabled());
  profiler.stop();
}

TEST(Profiler, EnvKnobs) {
  ::setenv("WEAKKEYS_PROFILE_HZ", "43.5", 1);
  ::setenv("WEAKKEYS_PROFILE_OUT", "/tmp/p.folded", 1);
  EXPECT_DOUBLE_EQ(obs::profile_hz_from_env(), 43.5);
  EXPECT_EQ(obs::profile_out_from_env(), "/tmp/p.folded");
  ::setenv("WEAKKEYS_PROFILE_HZ", "not-a-number", 1);
  EXPECT_EQ(obs::profile_hz_from_env(), 0.0);
  ::unsetenv("WEAKKEYS_PROFILE_HZ");
  ::unsetenv("WEAKKEYS_PROFILE_OUT");
  EXPECT_EQ(obs::profile_hz_from_env(), 0.0);
  EXPECT_EQ(obs::profile_out_from_env(), "");
}

// ------------------------------------------------------- mem accounting ----

TEST(MemAccounting, AttributesScopedAllocationsToLabels) {
  if (!obs::mem::supported()) GTEST_SKIP() << "no malloc_usable_size";
  obs::mem::reset_for_test();
  static const int label = obs::mem::register_label("test.subsystem");
  ASSERT_GE(label, 0);
  obs::mem::enable();
  constexpr std::size_t kBytes = 1 << 20;
  {
    obs::MemScope scope(label);
    std::vector<char> block(kBytes, 'x');
    const auto totals = obs::mem::totals();
    EXPECT_GE(totals.live_bytes, static_cast<std::int64_t>(kBytes));
    EXPECT_GE(totals.peak_bytes, kBytes);
  }
  obs::mem::disable();
  bool found = false;
  for (const auto& ls : obs::mem::label_stats()) {
    if (ls.label != "test.subsystem") continue;
    found = true;
    EXPECT_GE(ls.cumulative_bytes, kBytes);
    EXPECT_GE(ls.peak_bytes, kBytes);
    // Symmetric accounting: the block was freed inside the same scope.
    EXPECT_LT(ls.live_bytes, static_cast<std::int64_t>(kBytes));
    EXPECT_GE(ls.allocations, 1u);
  }
  EXPECT_TRUE(found);
  obs::mem::reset_for_test();
}

TEST(MemAccounting, OnlyIfUnattributedDoesNotStealFromOuterScope) {
  if (!obs::mem::supported()) GTEST_SKIP() << "no malloc_usable_size";
  obs::mem::reset_for_test();
  static const int outer = obs::mem::register_label("test.outer");
  static const int inner = obs::mem::register_label("test.inner");
  obs::mem::enable();
  constexpr std::size_t kBytes = 1 << 18;
  {
    obs::MemScope outer_scope(outer);
    // Engages only when nothing is attributed — here the outer label is,
    // so this scope must be a no-op.
    obs::MemScope inner_scope(inner, /*only_if_unattributed=*/true);
    std::vector<char> block(kBytes, 'y');
    (void)block;
  }
  obs::mem::disable();
  std::uint64_t outer_cum = 0;
  std::uint64_t inner_cum = 0;
  for (const auto& ls : obs::mem::label_stats()) {
    if (ls.label == "test.outer") outer_cum = ls.cumulative_bytes;
    if (ls.label == "test.inner") inner_cum = ls.cumulative_bytes;
  }
  EXPECT_GE(outer_cum, kBytes);
  EXPECT_EQ(inner_cum, 0u);
  obs::mem::reset_for_test();
}

TEST(MemAccounting, BudgetAlarmLatchesAndConsumesExactlyOnce) {
  if (!obs::mem::supported()) GTEST_SKIP() << "no malloc_usable_size";
  obs::mem::reset_for_test();
  obs::mem::enable();
  obs::mem::set_budget_bytes(64 * 1024);
  {
    std::vector<char> over(1 << 20, 'z');  // crosses the 64 KiB budget
    (void)over;
  }
  EXPECT_TRUE(obs::mem::totals().budget_alarmed);
  EXPECT_TRUE(obs::mem::consume_budget_alarm());
  EXPECT_FALSE(obs::mem::consume_budget_alarm());  // latched, not repeated
  EXPECT_TRUE(obs::mem::totals().budget_alarmed);  // view survives consume
  obs::mem::disable();
  obs::mem::reset_for_test();
  EXPECT_FALSE(obs::mem::totals().budget_alarmed);
}

TEST(MemAccounting, PublishMirrorsIntoRegistry) {
  if (!obs::mem::supported()) GTEST_SKIP() << "no malloc_usable_size";
  obs::mem::reset_for_test();
  static const int label = obs::mem::register_label("test.publish");
  obs::Telemetry telemetry;
  obs::mem::enable(&telemetry.metrics());
  {
    obs::MemScope scope(label);
    std::vector<char> block(1 << 16, 'p');
    (void)block;
  }
  obs::mem::disable();
  obs::mem::publish(telemetry.metrics());
  const obs::MetricsSnapshot snap = telemetry.metrics().snapshot();
  EXPECT_GE(snap.counter("mem.cumulative_bytes"), 1u << 16);
  EXPECT_GE(snap.counter("mem.test.publish.cumulative_bytes"), 1u << 16);
  ASSERT_NE(snap.gauges.find("mem.peak_bytes"), snap.gauges.end());
  EXPECT_GE(snap.gauges.at("mem.peak_bytes"),
            static_cast<std::int64_t>(1 << 16));
  // The allocation-size histogram was pre-created and fed by the hook.
  const auto hist = snap.histograms.find("mem.alloc_bytes");
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_GT(hist->second.count, 0u);
  obs::mem::reset_for_test();
}

// --------------------------------------------- arena + product-tree census ----

TEST(TrackedArena, ChargeReleasePeak) {
  util::TrackedArena arena;
  arena.charge(100);
  arena.charge(50);
  EXPECT_EQ(arena.live_bytes(), 150u);
  EXPECT_EQ(arena.peak_bytes(), 150u);
  arena.release(100);
  EXPECT_EQ(arena.live_bytes(), 50u);
  EXPECT_EQ(arena.peak_bytes(), 150u);
  arena.charge(10);
  EXPECT_EQ(arena.peak_bytes(), 150u);  // below the high-water mark
  EXPECT_EQ(arena.cumulative_bytes(), 160u);
}

std::vector<BigInt> census_corpus(std::size_t count) {
  std::vector<BigInt> moduli;
  moduli.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    moduli.emplace_back(1000003u + 2 * i);  // odd, pairwise distinct
  }
  return moduli;
}

TEST(ProductTreeCensus, LevelBytesSumToArenaPeak) {
  const auto moduli = census_corpus(64);
  util::TrackedArena arena;
  batchgcd::ProductTree tree(moduli, &arena);
  const auto& levels = tree.level_stats();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front().nodes, moduli.size());
  EXPECT_EQ(levels.back().nodes, 1u);
  std::uint64_t level_sum = 0;
  for (const auto& level : levels) {
    EXPECT_GT(level.bytes, 0u);
    level_sum += level.bytes;
  }
  // The identity the acceptance check rides on: per-level bytes are exact
  // payload counts, so their sum IS the retained footprint and the arena
  // peak (one tree lives in the arena at a time).
  EXPECT_EQ(level_sum, tree.retained_bytes());
  EXPECT_EQ(level_sum, arena.peak_bytes());
  EXPECT_EQ(arena.live_bytes(), arena.peak_bytes());

  obs::Telemetry telemetry;
  tree.publish_level_stats(telemetry.metrics());
  const obs::MetricsSnapshot snap = telemetry.metrics().snapshot();
  std::int64_t gauge_sum = 0;
  for (const auto& [name, value] : snap.gauges) {
    if (name.rfind("batchgcd.product_tree.level", 0) == 0 &&
        name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".bytes") == 0) {
      gauge_sum += value;
    }
  }
  ASSERT_NE(snap.gauges.find("batchgcd.product_tree.bytes_peak"),
            snap.gauges.end());
  EXPECT_EQ(gauge_sum, snap.gauges.at("batchgcd.product_tree.bytes_peak"));
}

TEST(ProductTreeCensus, ArenaReleasedOnDestructionAndMove) {
  const auto moduli = census_corpus(32);
  util::TrackedArena arena;
  {
    batchgcd::ProductTree tree(moduli, &arena);
    EXPECT_GT(arena.live_bytes(), 0u);
    batchgcd::ProductTree moved = std::move(tree);
    EXPECT_GT(arena.live_bytes(), 0u);  // single release, after the move
  }
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_GT(arena.peak_bytes(), 0u);
}

// ------------------------------------------------- budget-constrained e2e ----

std::vector<std::string> run_batch_gcd_hex(const std::vector<BigInt>& moduli) {
  std::vector<std::string> out;
  for (const auto& d : batchgcd::batch_gcd(moduli).divisors) {
    out.push_back(d.to_hex());
  }
  return out;
}

TEST(MemBudgetE2E, ConstrainedRunIsByteIdenticalAndAlarmsOnce) {
  if (!obs::mem::supported()) GTEST_SKIP() << "no malloc_usable_size";
  // Planted structure: two pairs sharing a prime plus healthy moduli.
  std::vector<BigInt> moduli = census_corpus(200);
  const BigInt p(1000003), q(1000033), r(1000037);
  moduli[10] = p * q;
  moduli[20] = p * r;
  const std::vector<std::string> reference = run_batch_gcd_hex(moduli);
  ASSERT_FALSE(reference.empty());

  obs::mem::reset_for_test();
  obs::mem::enable();
  obs::mem::set_budget_bytes(1024);  // guaranteed to be crossed
  const std::vector<std::string> constrained = run_batch_gcd_hex(moduli);
  obs::mem::disable();

  // The alarm is advisory: it fired (exactly once) and the math is
  // untouched.
  EXPECT_TRUE(obs::mem::consume_budget_alarm());
  EXPECT_FALSE(obs::mem::consume_budget_alarm());
  EXPECT_EQ(constrained, reference);
  obs::mem::reset_for_test();
}

}  // namespace
}  // namespace weakkeys

// Compatibility forwarder: the JSON parser moved into the library proper
// (src/util/json_lite.hpp) so the benchdiff tool can consume BENCH_*.json
// files. Tests keep their historical `testjson::` spelling.
#pragma once

#include "util/json_lite.hpp"

namespace weakkeys {
namespace testjson = jsonlite;
}  // namespace weakkeys

// Integration tests: the full pipeline on a small, freshly simulated corpus,
// plus the cache layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "analysis/transitions.hpp"
#include "core/scan_store.hpp"
#include "core/study.hpp"
#include "netsim/catalog.hpp"

namespace weakkeys::core {
namespace {

/// One shared small study for all pipeline assertions (building it is the
/// expensive part; the assertions are read-only).
class StudyIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.sim.seed = 424242;
    config.sim.scale = 0.03;
    config.sim.miller_rabin_rounds = 4;
    config.batch_gcd_subsets = 3;
    config.threads = 2;
    config.cache_path = "";  // always fresh
    study_ = new Study(config);
    study_->run();
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }

  static Study* study_;
};

Study* StudyIntegration::study_ = nullptr;

TEST_F(StudyIntegration, CorpusHasExpectedShape) {
  const auto& stats = study_->factor_stats();
  EXPECT_GT(stats.distinct_moduli, 500u);
  EXPECT_GT(study_->dataset().total_host_records(), 10000u);
  // Some keys factored, but far from all.
  EXPECT_GT(study_->vulnerable().size(), 20u);
  EXPECT_LT(study_->vulnerable().size(), stats.distinct_moduli / 2);
}

TEST_F(StudyIntegration, FactoredKeysActuallyFactor) {
  for (const auto& f : study_->factored()) {
    EXPECT_EQ(f.p * f.q, f.n);
    EXPECT_GT(f.p, bn::BigInt(1));
    EXPECT_GT(f.q, bn::BigInt(1));
  }
}

TEST_F(StudyIntegration, GroundTruthAgreesWithFactoring) {
  // Every factored HTTPS modulus must belong to a device the simulation
  // marked flawed (or to the IBM pool family) — no false positives.
  const auto* net = study_->ground_truth();
  ASSERT_NE(net, nullptr);
  std::set<std::string> flawed_moduli;
  std::set<std::string> all_moduli;
  for (const auto& device : net->devices()) {
    if (device.https_cert) {
      const std::string hex = device.https_cert->key.n.to_hex();
      all_moduli.insert(hex);
      if (device.flawed || device.model->uses_ibm_nine_primes) {
        flawed_moduli.insert(hex);
      }
    }
    if (device.ssh_cert) {
      const std::string hex = device.ssh_cert->key.n.to_hex();
      all_moduli.insert(hex);
      if (device.flawed) flawed_moduli.insert(hex);
    }
  }
  for (const auto& f : study_->factored()) {
    const std::string hex = f.n.to_hex();
    // Factored moduli not present in the device ground truth would indicate
    // the pipeline factored something corrupted or synthetic.
    if (all_moduli.contains(hex)) {
      EXPECT_TRUE(flawed_moduli.contains(hex))
          << "healthy device key factored: " << hex;
    }
  }
}

TEST_F(StudyIntegration, IbmCliqueDetected) {
  ASSERT_FALSE(study_->cliques().empty());
  const auto& top = study_->cliques().front();
  EXPECT_EQ(top.primes.size(), 9u);
  EXPECT_GE(top.density, 0.5);
  EXPECT_LE(top.moduli.size(), 36u);
}

TEST_F(StudyIntegration, LabelerUsesCliqueBeforeSubject) {
  // Every record carrying a clique modulus is labeled IBM, including
  // Siemens-subject certificates (the paper's Section 3.3.2 behaviour).
  const auto labeler = study_->labeler();
  const auto& top = study_->cliques().front();
  std::set<std::string> clique_hex;
  for (const auto& n : top.moduli) clique_hex.insert(n.to_hex());

  std::size_t clique_records = 0;
  for (const auto& snap : study_->dataset().snapshots) {
    for (const auto& rec : snap.records) {
      if (!clique_hex.contains(rec.cert().key.n.to_hex())) continue;
      ++clique_records;
      const auto label = labeler(rec);
      ASSERT_TRUE(label.has_value());
      EXPECT_EQ(label->vendor, "IBM");
    }
  }
  EXPECT_GT(clique_records, 0u);
}

TEST_F(StudyIntegration, SeriesBuilderProducesJuniperSeries) {
  const auto builder = study_->series_builder();
  const auto series = builder.vendor_series("Juniper");
  ASSERT_FALSE(series.points.empty());
  EXPECT_GT(series.peak_total(), 0u);
}

TEST_F(StudyIntegration, VulnerableExcludesBitErrors) {
  // Bit-error divisors must not be counted as vulnerable keys.
  for (const auto& f : study_->factored()) {
    EXPECT_NE(f.divisor_class, fingerprint::DivisorClass::kSmoothBitError);
  }
}

TEST_F(StudyIntegration, FindFactorLookup) {
  ASSERT_FALSE(study_->factored().empty());
  const auto& first = study_->factored().front();
  const auto* found = study_->find_factor(first.n);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->p, first.p);
  EXPECT_EQ(study_->find_factor(bn::BigInt(35)), nullptr);
}

TEST_F(StudyIntegration, RunIsIdempotent) {
  const std::size_t before = study_->factored().size();
  study_->run();
  EXPECT_EQ(study_->factored().size(), before);
}

TEST(StudyCache, SecondRunLoadsIdenticalResults) {
  const std::string cache = "study_cache_test.tmp";
  std::remove(cache.c_str());
  std::remove((cache + ".factors").c_str());

  StudyConfig config;
  config.sim.seed = 777;
  config.sim.scale = 0.01;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 2;
  config.cache_path = cache;

  Study first(config);
  first.run();
  const auto first_stats = first.factor_stats();
  const auto first_records = first.dataset().total_host_records();

  // Second study: must reload both caches and agree exactly.
  Study second(config);
  second.run();
  EXPECT_EQ(second.dataset().total_host_records(), first_records);
  EXPECT_EQ(second.factor_stats().distinct_moduli, first_stats.distinct_moduli);
  EXPECT_EQ(second.factored().size(), first.factored().size());
  EXPECT_EQ(second.vulnerable().size(), first.vulnerable().size());
  for (std::size_t i = 0; i < first.factored().size(); ++i) {
    EXPECT_EQ(second.factored()[i].n, first.factored()[i].n);
    EXPECT_EQ(second.factored()[i].p, first.factored()[i].p);
  }
  // Loaded-from-cache runs have no simulation ground truth.
  EXPECT_EQ(second.ground_truth(), nullptr);
  EXPECT_NE(first.ground_truth(), nullptr);

  std::remove(cache.c_str());
  std::remove((cache + ".factors").c_str());
}

TEST(StudyCache, RebuildReasonIsLoggedAndExposed) {
  const std::string cache = "study_rebuild_reason_test.tmp";
  std::remove(cache.c_str());
  std::remove((cache + ".factors").c_str());

  StudyConfig config;
  config.sim.seed = 778;
  config.sim.scale = 0.005;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 2;
  config.cache_path = cache;

  {
    Study first(config);
    first.run();
    EXPECT_EQ(first.dataset_cache_status(), DatasetLoadStatus::kMissing);
  }

  // Corrupt the corpus cache: the CRC footer no longer verifies, and the
  // rebuild must say so instead of silently resimulating.
  {
    std::FILE* f = std::fopen(cache.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a scan store", f);
    std::fclose(f);
  }

  std::vector<std::string> lines;
  config.log = [&lines](const std::string& line) { lines.push_back(line); };
  Study second(config);
  second.run();
  EXPECT_EQ(second.dataset_cache_status(), DatasetLoadStatus::kBadChecksum);
  bool attributed = false;
  for (const auto& line : lines) {
    if (line.find("corpus cache unusable (checksum mismatch)") !=
        std::string::npos) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);

  std::remove(cache.c_str());
  std::remove((cache + ".factors").c_str());
}

// ---------------------------------------------------------- scan store ----

class ScanStoreTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Unique per test: parallel ctest runs sibling tests as separate
  // processes in the same directory, so a shared name would collide.
  const std::string path_ =
      std::string("test_scan_store_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".tmp";
};

TEST_F(ScanStoreTest, RoundTripsDataset) {
  netsim::SimConfig sim;
  sim.seed = 5;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.005), sim);
  const netsim::ScanDataset original = net.run(netsim::standard_campaigns());

  const StoreKey key{5, 5000, 4, 1};
  save_dataset(original, key, path_);
  const auto loaded = load_dataset(key, path_);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->snapshots.size(), original.snapshots.size());
  EXPECT_EQ(loaded->total_host_records(), original.total_host_records());
  EXPECT_EQ(loaded->distinct_certificates(), original.distinct_certificates());
  for (std::size_t s = 0; s < original.snapshots.size(); ++s) {
    const auto& a = original.snapshots[s];
    const auto& b = loaded->snapshots[s];
    EXPECT_EQ(a.date, b.date);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.protocol, b.protocol);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
      EXPECT_EQ(a.records[i].ip, b.records[i].ip);
      EXPECT_EQ(a.records[i].cert(), b.records[i].cert());
    }
  }
}

TEST_F(ScanStoreTest, KeyMismatchForcesRebuild) {
  netsim::SimConfig sim;
  sim.seed = 6;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.003), sim);
  const netsim::ScanDataset original = net.run(netsim::standard_campaigns());
  save_dataset(original, StoreKey{6, 3000, 4, 1}, path_);

  EXPECT_FALSE(load_dataset(StoreKey{7, 3000, 4, 1}, path_).has_value());
  EXPECT_FALSE(load_dataset(StoreKey{6, 9999, 4, 1}, path_).has_value());
  EXPECT_FALSE(load_dataset(StoreKey{6, 3000, 4, 2}, path_).has_value());
  EXPECT_TRUE(load_dataset(StoreKey{6, 3000, 4, 1}, path_).has_value());
}

TEST_F(ScanStoreTest, MissingAndCorruptFilesReturnNullopt) {
  EXPECT_FALSE(load_dataset(StoreKey{}, "no_such_file.tmp").has_value());
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_dataset(StoreKey{}, path_).has_value());
}

// -------------------------------------------------------- sharded store ----

void remove_shards(const std::string& path, std::uint32_t shards) {
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::remove(shard_path(path, s).c_str());
    std::remove((shard_path(path, s) + ".tmp").c_str());
  }
}

std::vector<unsigned char> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<unsigned char> bytes;
  if (!f) return bytes;
  unsigned char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return bytes;
}

void expect_datasets_equal(const netsim::ScanDataset& a,
                           const netsim::ScanDataset& b) {
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t s = 0; s < a.snapshots.size(); ++s) {
    const auto& x = a.snapshots[s];
    const auto& y = b.snapshots[s];
    EXPECT_EQ(x.date, y.date);
    EXPECT_EQ(x.source, y.source);
    EXPECT_EQ(x.protocol, y.protocol);
    ASSERT_EQ(x.records.size(), y.records.size());
    for (std::size_t i = 0; i < x.records.size(); ++i) {
      EXPECT_EQ(x.records[i].ip, y.records[i].ip);
      EXPECT_EQ(x.records[i].cert(), y.records[i].cert());
    }
  }
}

TEST_F(ScanStoreTest, ShardedRoundTripMatchesSingleFile) {
  netsim::SimConfig sim;
  sim.seed = 8;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.005), sim);
  const netsim::ScanDataset original = net.run(netsim::standard_campaigns());
  const StoreKey key{8, 5000, 4, 1};

  save_dataset(original, key, path_);
  save_dataset_sharded(original, key, path_ + ".sh", 3);

  DatasetLoadStatus status = DatasetLoadStatus::kMissing;
  const auto single = load_dataset(key, path_);
  const auto sharded = load_dataset_sharded(key, path_ + ".sh", &status);
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(sharded.has_value());
  EXPECT_EQ(status, DatasetLoadStatus::kLoaded);
  // Interleaved ingest reconstructs the exact single-file record order.
  expect_datasets_equal(*single, *sharded);
  expect_datasets_equal(original, *sharded);
  EXPECT_EQ(sharded->distinct_certificates(), original.distinct_certificates());

  // The streaming ingest visits the same snapshots/records without
  // materializing: counts must agree with the materialized load.
  std::size_t snaps = 0;
  std::size_t records = 0;
  EXPECT_EQ(ingest_dataset_sharded(
                key, path_ + ".sh",
                [&](const netsim::ScanSnapshot&) { ++snaps; },
                [&](netsim::HostRecord&&) { ++records; }),
            DatasetLoadStatus::kLoaded);
  EXPECT_EQ(snaps, original.snapshots.size());
  EXPECT_EQ(records, sharded->total_host_records());

  remove_shards(path_ + ".sh", 3);
}

TEST_F(ScanStoreTest, ShardedWriterIsByteIdenticalToBatchSave) {
  netsim::SimConfig sim;
  sim.seed = 9;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.004), sim);
  const netsim::ScanDataset dataset = net.run(netsim::standard_campaigns());
  const StoreKey key{9, 4000, 4, 1};

  save_dataset_sharded(dataset, key, path_ + ".a", 3);
  {
    ShardedDatasetWriter writer(key, path_ + ".b", 3);
    for (const auto& snap : dataset.snapshots) writer.add_snapshot(snap);
    writer.finish();
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    SCOPED_TRACE(s);
    EXPECT_EQ(slurp(shard_path(path_ + ".a", s)),
              slurp(shard_path(path_ + ".b", s)));
  }
  remove_shards(path_ + ".a", 3);
  remove_shards(path_ + ".b", 3);
}

TEST_F(ScanStoreTest, ShardedFailsClosedOnMissingOrCorruptShard) {
  netsim::SimConfig sim;
  sim.seed = 10;
  sim.miller_rabin_rounds = 4;
  netsim::Internet net(netsim::standard_models(0.003), sim);
  const netsim::ScanDataset dataset = net.run(netsim::standard_campaigns());
  const StoreKey key{10, 3000, 4, 1};
  save_dataset_sharded(dataset, key, path_, 3);

  // Key mismatch on any shard: rebuild, not partial load.
  DatasetLoadStatus status = DatasetLoadStatus::kLoaded;
  EXPECT_FALSE(
      load_dataset_sharded(StoreKey{11, 3000, 4, 1}, path_, &status)
          .has_value());
  EXPECT_EQ(status, DatasetLoadStatus::kKeyMismatch);

  // Corrupt one shard's tail: the whole corpus is unusable (no partial
  // corpora), attributed to the checksum.
  {
    const auto bytes = slurp(shard_path(path_, 1));
    std::FILE* f = std::fopen(shard_path(path_, 1).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size() - 3, f),
              bytes.size() - 3);
    std::fclose(f);
  }
  EXPECT_FALSE(load_dataset_sharded(key, path_, &status).has_value());
  EXPECT_EQ(status, DatasetLoadStatus::kBadChecksum);

  // A missing shard likewise fails the whole load.
  std::remove(shard_path(path_, 1).c_str());
  EXPECT_FALSE(load_dataset_sharded(key, path_, &status).has_value());
  EXPECT_EQ(status, DatasetLoadStatus::kMissing);

  remove_shards(path_, 3);
}

TEST_F(ScanStoreTest, SnapshotSinkStreamsWithoutAccumulating) {
  // Two identical simulations: one accumulating (the dataset path), one
  // streaming through snapshot_sink into a ShardedDatasetWriter. The
  // sharded store must reload to the accumulated dataset exactly — the
  // 10^6-host emission path changes residency, not results.
  netsim::SimConfig sim;
  sim.seed = 11;
  sim.miller_rabin_rounds = 4;
  netsim::Internet accumulate(netsim::standard_models(0.004), sim);
  netsim::ScanDataset dataset = accumulate.run(netsim::standard_campaigns());

  const StoreKey key{11, 4000, 4, 1};
  std::size_t streamed = 0;
  {
    ShardedDatasetWriter writer(key, path_, 2);
    netsim::SimConfig streaming = sim;
    streaming.snapshot_sink = [&](netsim::ScanSnapshot&& snap) {
      ++streamed;
      writer.add_snapshot(snap);
    };
    netsim::Internet stream(netsim::standard_models(0.004), streaming);
    const netsim::ScanDataset empty =
        stream.run(netsim::standard_campaigns());
    EXPECT_TRUE(empty.snapshots.empty());  // nothing accumulated
    writer.finish();
  }
  EXPECT_EQ(streamed, dataset.snapshots.size());

  auto reloaded = load_dataset_sharded(key, path_);
  ASSERT_TRUE(reloaded.has_value());
  // The sink delivers generation order; the returned dataset is
  // date-sorted. Sort the reload the same way before comparing.
  std::sort(reloaded->snapshots.begin(), reloaded->snapshots.end(),
            [](const netsim::ScanSnapshot& a, const netsim::ScanSnapshot& b) {
              if (a.date != b.date) return a.date < b.date;
              return a.source < b.source;
            });
  expect_datasets_equal(dataset, *reloaded);
  remove_shards(path_, 2);
}

TEST(StudyCache, ShardedCacheReloadsIdenticalResults) {
  const std::string single = "study_cache_single_test.tmp";
  const std::string sharded = "study_cache_sharded_test.tmp";
  auto cleanup = [&] {
    std::remove(single.c_str());
    std::remove((single + ".factors").c_str());
    std::remove((sharded + ".factors").c_str());
    remove_shards(sharded, 3);
  };
  cleanup();

  StudyConfig config;
  config.sim.seed = 779;
  config.sim.scale = 0.005;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 2;

  config.cache_path = single;
  Study seed_single(config);
  seed_single.run();

  config.cache_path = sharded;
  config.cache_shards = 3;
  Study seed_sharded(config);
  seed_sharded.run();

  // Both caches written; both reload paths must agree with each other.
  Study from_sharded(config);
  from_sharded.run();
  EXPECT_EQ(from_sharded.dataset_cache_status(), DatasetLoadStatus::kLoaded);

  StudyConfig single_config = config;
  single_config.cache_path = single;
  single_config.cache_shards = 0;
  Study reload_single(single_config);
  reload_single.run();
  EXPECT_EQ(reload_single.dataset_cache_status(), DatasetLoadStatus::kLoaded);

  ASSERT_EQ(from_sharded.factored().size(), reload_single.factored().size());
  for (std::size_t i = 0; i < from_sharded.factored().size(); ++i) {
    EXPECT_EQ(from_sharded.factored()[i].n, reload_single.factored()[i].n);
    EXPECT_EQ(from_sharded.factored()[i].p, reload_single.factored()[i].p);
  }
  EXPECT_EQ(from_sharded.vulnerable().size(), reload_single.vulnerable().size());
  EXPECT_EQ(from_sharded.dataset().total_host_records(),
            reload_single.dataset().total_host_records());
  cleanup();
}

#if defined(WEAKKEYS_GCD_WORKER_BIN)
TEST_F(StudyIntegration, ClusterPathMatchesInProcessPipeline) {
  // Same corpus, factoring routed through real worker processes over TCP:
  // the study must find exactly the same vulnerable keys.
  StudyConfig config;
  config.sim.seed = 424242;
  config.sim.scale = 0.03;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 3;
  config.cache_path = "";
  config.worker_processes = 2;
  config.worker_binary = WEAKKEYS_GCD_WORKER_BIN;
  Study clustered(config);
  clustered.run();

  EXPECT_GT(clustered.cluster_stats().workers_spawned, 0u);
  EXPECT_GT(clustered.cluster_stats().tasks_executed, 0u);
  const std::set<std::string> expected(study_->vulnerable().hex().begin(),
                                       study_->vulnerable().hex().end());
  const std::set<std::string> actual(clustered.vulnerable().hex().begin(),
                                     clustered.vulnerable().hex().end());
  EXPECT_EQ(actual, expected);
}
#endif

}  // namespace
}  // namespace weakkeys::core

// Unit tests for the performance-regression observatory: BENCH_<suite>.json
// parsing, the threshold/noise-floor verdict model, and the markdown/JSON
// reports the tools/benchdiff CLI emits.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "json_lite.hpp"
#include "obs/benchdiff.hpp"

namespace weakkeys {
namespace {

using obs::BenchDiffOptions;
using obs::BenchRun;
using obs::BenchSuite;
using obs::BenchVerdict;

BenchSuite suite_of(std::initializer_list<BenchRun> runs) {
  BenchSuite s;
  s.suite = "perf_test";
  s.runs = runs;
  return s;
}

TEST(BenchTime, UnitConversions) {
  EXPECT_DOUBLE_EQ(obs::bench_time_to_ns(5.0, "ns"), 5.0);
  EXPECT_DOUBLE_EQ(obs::bench_time_to_ns(5.0, "us"), 5000.0);
  EXPECT_DOUBLE_EQ(obs::bench_time_to_ns(5.0, "ms"), 5e6);
  EXPECT_DOUBLE_EQ(obs::bench_time_to_ns(5.0, "s"), 5e9);
  EXPECT_THROW(obs::bench_time_to_ns(5.0, "fortnights"), std::runtime_error);
}

TEST(BenchParse, ParsesBenchJsonAndAveragesRepetitions) {
  const std::string text = R"({
    "suite": "perf_batchgcd",
    "runs": [
      {"name": "BM_A", "iterations": 10, "real_time": 100.0,
       "cpu_time": 90.0, "time_unit": "us"},
      {"name": "BM_B", "iterations": 5, "real_time": 2.0,
       "cpu_time": 2.0, "time_unit": "ms"},
      {"name": "BM_A", "iterations": 10, "real_time": 300.0,
       "cpu_time": 110.0, "time_unit": "us"}
    ]
  })";
  const BenchSuite suite = obs::parse_bench_json(text);
  EXPECT_EQ(suite.suite, "perf_batchgcd");
  ASSERT_EQ(suite.runs.size(), 2u);  // BM_A repetitions merged
  EXPECT_EQ(suite.runs[0].name, "BM_A");
  EXPECT_DOUBLE_EQ(suite.runs[0].real_time_ns, 200'000.0);  // mean of reps
  EXPECT_DOUBLE_EQ(suite.runs[0].cpu_time_ns, 100'000.0);
  EXPECT_EQ(suite.runs[0].iterations, 20u);
  EXPECT_EQ(suite.runs[1].name, "BM_B");
  EXPECT_DOUBLE_EQ(suite.runs[1].real_time_ns, 2e6);
}

TEST(BenchParse, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::parse_bench_json("not json"), std::runtime_error);
  EXPECT_THROW(obs::parse_bench_json("{}"), std::runtime_error);
  EXPECT_THROW(obs::parse_bench_json(R"({"suite":"x"})"), std::runtime_error);
}

TEST(BenchDiff, SelfCompareReportsZeroRegressions) {
  const BenchSuite suite = suite_of({{"BM_A", 1e6, 1e6, 100},
                                     {"BM_B", 5e4, 5e4, 1000}});
  const auto report = obs::diff_benchmarks(suite, suite, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
  EXPECT_EQ(report.added, 0u);
  EXPECT_EQ(report.missing, 0u);
  ASSERT_EQ(report.rows.size(), 2u);
  for (const auto& row : report.rows) {
    EXPECT_EQ(row.verdict, BenchVerdict::kOk) << row.name;
    EXPECT_DOUBLE_EQ(row.rel_delta, 0.0);
  }
}

TEST(BenchDiff, FlagsRegressionBeyondThresholdAndFloor) {
  const BenchSuite baseline = suite_of({{"BM_A", 1e6, 1e6, 100}});
  const BenchSuite candidate = suite_of({{"BM_A", 1.25e6, 1.25e6, 100}});
  BenchDiffOptions options;
  options.threshold = 0.10;
  options.noise_floor_ns = 5000.0;
  const auto report = obs::diff_benchmarks(baseline, candidate, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
  EXPECT_EQ(report.rows[0].verdict, BenchVerdict::kRegressed);
  EXPECT_NEAR(report.rows[0].rel_delta, 0.25, 1e-9);
}

TEST(BenchDiff, NoiseFloorMutesTinyAbsoluteDeltas) {
  // 3x relative slowdown, but only 200ns absolute — below the floor this
  // is scheduling jitter, not a regression.
  const BenchSuite baseline = suite_of({{"BM_Tiny", 100.0, 100.0, 1000000}});
  const BenchSuite candidate = suite_of({{"BM_Tiny", 300.0, 300.0, 1000000}});
  const auto report = obs::diff_benchmarks(baseline, candidate, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rows[0].verdict, BenchVerdict::kOk);

  // The same relative change above the floor IS a regression.
  const BenchSuite big_base = suite_of({{"BM_Big", 1e6, 1e6, 100}});
  const BenchSuite big_cand = suite_of({{"BM_Big", 3e6, 3e6, 100}});
  EXPECT_FALSE(obs::diff_benchmarks(big_base, big_cand, {}).ok());
}

TEST(BenchDiff, ImprovementsAreSymmetricAndNeverFail) {
  const BenchSuite baseline = suite_of({{"BM_A", 2e6, 2e6, 100}});
  const BenchSuite candidate = suite_of({{"BM_A", 1e6, 1e6, 200}});
  const auto report = obs::diff_benchmarks(baseline, candidate, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.improvements, 1u);
  EXPECT_EQ(report.rows[0].verdict, BenchVerdict::kImproved);
}

TEST(BenchDiff, NewAndMissingBenchmarksAreReportedNotFailed) {
  const BenchSuite baseline = suite_of({{"BM_Old", 1e6, 1e6, 100},
                                        {"BM_Kept", 1e6, 1e6, 100}});
  const BenchSuite candidate = suite_of({{"BM_Kept", 1e6, 1e6, 100},
                                         {"BM_New", 1e6, 1e6, 100}});
  const auto report = obs::diff_benchmarks(baseline, candidate, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.added, 1u);
  EXPECT_EQ(report.missing, 1u);
  ASSERT_EQ(report.rows.size(), 3u);
  // Baseline order first, then new benchmarks.
  EXPECT_EQ(report.rows[0].name, "BM_Old");
  EXPECT_EQ(report.rows[0].verdict, BenchVerdict::kMissing);
  EXPECT_EQ(report.rows[1].name, "BM_Kept");
  EXPECT_EQ(report.rows[2].name, "BM_New");
  EXPECT_EQ(report.rows[2].verdict, BenchVerdict::kNew);
}

TEST(BenchDiff, MarkdownAndJsonReportsCarryTheVerdicts) {
  const BenchSuite baseline = suite_of({{"BM_A", 1e6, 1e6, 100}});
  const BenchSuite candidate = suite_of({{"BM_A", 2e6, 2e6, 100}});
  const auto report = obs::diff_benchmarks(baseline, candidate, {});

  const std::string markdown = report.markdown();
  EXPECT_NE(markdown.find("| BM_A |"), std::string::npos);
  EXPECT_NE(markdown.find("regressed"), std::string::npos);
  EXPECT_NE(markdown.find("+100.0%"), std::string::npos);
  EXPECT_NE(markdown.find("1 regressed"), std::string::npos);

  const auto doc = jsonlite::parse(report.to_json());
  EXPECT_EQ(doc.at("suite").str(), "perf_test");
  EXPECT_EQ(doc.at("regressions").integer(), 1);
  const auto& rows = doc.at("rows").array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("name").str(), "BM_A");
  EXPECT_EQ(rows[0].at("verdict").str(), "regressed");
  EXPECT_NEAR(rows[0].at("rel_delta").number(), 1.0, 1e-9);
}

}  // namespace
}  // namespace weakkeys

// Unit tests for the obs/ telemetry subsystem: metrics instruments, the
// span tracer (including multi-threaded use under the thread pool), the
// Chrome trace exporter, and the structured event sink.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "json_lite.hpp"
#include "obs/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys {
namespace {

// ------------------------------------------------------------- metrics ----

TEST(Counter, IncSetAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Counter, OverflowWrapsModulo64Bits) {
  obs::Counter c;
  c.set(std::numeric_limits<std::uint64_t>::max());
  c.inc(2);  // unsigned wrap is defined behavior, not UB
  EXPECT_EQ(c.value(), 1u);
}

TEST(Gauge, SetAddAndNegativeValues) {
  obs::Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({10, 100});
  // Bucket i counts values <= bounds[i]; the extra last bucket is overflow.
  for (const std::uint64_t v : {0u, 10u, 11u, 100u, 101u, 5000u}) h.record(v);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);  // 0, 10
  EXPECT_EQ(buckets[1], 2u);  // 11, 100
  EXPECT_EQ(buckets[2], 2u);  // 101, 5000 (overflow)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 5000);
  EXPECT_EQ(h.max(), 5000u);
}

TEST(Histogram, BoundsAreSortedAndDeduped) {
  const obs::Histogram h({100, 10, 100, 1});
  const std::vector<std::uint64_t> expected{1, 10, 100};
  EXPECT_EQ(h.bounds(), expected);
}

TEST(Histogram, DefaultLatencyBoundsCoverMicrosecondsToMinutes) {
  const auto bounds = obs::Histogram::default_latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_GE(bounds.back(), 60u * 1000 * 1000);  // at least a minute
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("stable.counter");
  a.inc(3);
  // Creating more instruments must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(&registry.counter("stable.counter"), &a);
  EXPECT_EQ(registry.counter("stable.counter").value(), 3u);
}

TEST(MetricsRegistry, HistogramReRegistrationKeepsOriginalBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("h", {1, 2, 3});
  obs::Histogram& again = registry.histogram("h", {999});
  EXPECT_EQ(&h, &again);
  const std::vector<std::uint64_t> expected{1, 2, 3};
  EXPECT_EQ(again.bounds(), expected);
}

TEST(MetricsRegistry, SnapshotReportsAllInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("c.one").inc(11);
  registry.gauge("g.depth").set(-4);
  registry.histogram("h.lat_us", {10}).record(3);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counter("c.one"), 11u);
  EXPECT_EQ(snap.counter("c.never_touched"), 0u);
  EXPECT_EQ(snap.gauges.at("g.depth"), -4);
  EXPECT_EQ(snap.histograms.at("h.lat_us").count, 1u);
}

TEST(MetricsRegistry, ToJsonParsesAndRoundTripsValues) {
  obs::MetricsRegistry registry;
  registry.counter("ingest.drop.even-modulus").inc(5);
  registry.gauge("queue").set(-2);
  auto& h = registry.histogram("task_us", {10, 100});
  h.record(7);
  h.record(250);
  const auto doc = testjson::parse(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("ingest.drop.even-modulus").integer(), 5);
  EXPECT_EQ(doc.at("gauges").at("queue").integer(), -2);
  const auto& hist = doc.at("histograms").at("task_us");
  EXPECT_EQ(hist.at("count").integer(), 2);
  EXPECT_EQ(hist.at("sum").integer(), 257);
  const auto& buckets = hist.at("buckets").array();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(buckets[0].at("le").integer(), 10);
  EXPECT_EQ(buckets[0].at("count").integer(), 1);
  EXPECT_EQ(buckets[2].at("le").str(), "inf");
  EXPECT_EQ(buckets[2].at("count").integer(), 1);
}

// --------------------------------------------------------------- tracer ----

TEST(Tracer, SpansNestAndSortParentFirst) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.span("outer");
    {
      obs::Span middle = tracer.span("middle");
      obs::Span inner = tracer.span("inner");
      inner.arg("k", 42);
    }
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted (tid, start, -dur): parents precede their children.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 2u);
  // Parent intervals contain their children.
  EXPECT_LE(events[0].ts_us, events[2].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[2].ts_us + events[2].dur_us);
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].first, "k");
  EXPECT_EQ(events[2].args[0].second, 42);
}

TEST(Tracer, ExplicitEndIsIdempotent) {
  obs::Tracer tracer;
  obs::Span span = tracer.span("once");
  span.end();
  span.end();
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer(/*enabled=*/false);
  {
    obs::Span span = tracer.span("ghost");
    span.arg("x", 1);
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.chrome_trace_json().find("ghost"), std::string::npos);
}

TEST(Tracer, ParallelForSpansStayCoherentAcrossThreads) {
  obs::Telemetry telemetry;
  util::ThreadPool pool(4, &telemetry);
  constexpr std::size_t kTasks = 64;
  {
    obs::Span outer = telemetry.tracer().span("parallel.outer");
    pool.parallel_for(kTasks, [&](std::size_t i) {
      obs::Span task = telemetry.tracer().span("parallel.task");
      task.arg("i", static_cast<std::int64_t>(i));
    });
  }
  const auto events = telemetry.tracer().events();
  std::size_t tasks = 0;
  std::set<std::uint32_t> tids;
  std::set<std::int64_t> indices;
  std::map<std::uint32_t, std::uint64_t> last_ts;
  for (const auto& e : events) {
    tids.insert(e.tid);
    // events() orders each thread's timeline; starts must be monotonic.
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts_us, it->second);
    }
    last_ts[e.tid] = e.ts_us;
    if (e.name == "parallel.task") {
      ++tasks;
      ASSERT_EQ(e.args.size(), 1u);
      indices.insert(e.args[0].second);
    }
  }
  EXPECT_EQ(tasks, kTasks);
  EXPECT_EQ(indices.size(), kTasks);  // every index seen exactly once
  EXPECT_EQ(events.size(), kTasks + 1);
  EXPECT_GE(tids.size(), 1u);

  // The pool's instruments saw every task too.
  const auto snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.counter("threadpool.tasks_completed"),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.histograms.at("threadpool.task_us").count,
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(snap.gauges.at("threadpool.queue_depth"), 0);
}

TEST(Tracer, ChromeTraceJsonIsValidAndMonotonicPerThread) {
  obs::Telemetry telemetry;
  util::ThreadPool pool(3, &telemetry);
  {
    obs::Span outer = telemetry.tracer().span("chrome.outer");
    pool.parallel_for(32, [&](std::size_t i) {
      obs::Span task = telemetry.tracer().span("chrome.task");
      task.arg("i", static_cast<std::int64_t>(i));
    });
  }
  const auto doc = testjson::parse(telemetry.tracer().chrome_trace_json());
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const auto& trace_events = doc.at("traceEvents").array();
  ASSERT_EQ(trace_events.size(), 33u);
  std::map<std::int64_t, double> last_ts;
  for (const auto& e : trace_events) {
    EXPECT_EQ(e.at("ph").str(), "X");
    EXPECT_EQ(e.at("cat").str(), "weakkeys");
    EXPECT_EQ(e.at("pid").integer(), 1);
    EXPECT_FALSE(e.at("name").str().empty());
    EXPECT_GE(e.at("dur").number(), 0.0);
    const std::int64_t tid = e.at("tid").integer();
    const double ts = e.at("ts").number();
    // File order is per-thread timeline order: ts monotonic within a tid.
    const auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second);
    }
    last_ts[tid] = ts;
  }
}

TEST(Tracer, StageTreeAggregatesRepeatedStages) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.span("pipeline");
    for (int i = 0; i < 3; ++i) {
      obs::Span stage = tracer.span("stage");
    }
  }
  const std::string tree = tracer.stage_tree();
  EXPECT_NE(tree.find("pipeline"), std::string::npos);
  EXPECT_NE(tree.find("stage"), std::string::npos);
  EXPECT_NE(tree.find("x3"), std::string::npos);  // aggregated call count
}

// ---------------------------------------------------------------- sink ----

TEST(TelemetrySink, CountsAndRingBufferWithoutTextSink) {
  obs::TelemetrySink sink(/*ring_capacity=*/4);
  for (int i = 0; i < 9; ++i) sink.info("event " + std::to_string(i));
  sink.warn("trouble");
  // Nothing is lost from the counts even though no text sink is attached.
  EXPECT_EQ(sink.total_events(), 10u);
  EXPECT_EQ(sink.events_emitted(obs::Level::kInfo), 9u);
  EXPECT_EQ(sink.events_emitted(obs::Level::kWarn), 1u);
  const auto recent = sink.recent();
  ASSERT_EQ(recent.size(), 4u);  // bounded by ring capacity, oldest first
  EXPECT_EQ(recent.front().message, "event 6");
  EXPECT_EQ(recent.back().message, "trouble");
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_GT(recent[i].seq, recent[i - 1].seq);
    EXPECT_GE(recent[i].ts_us, recent[i - 1].ts_us);
  }
}

TEST(TelemetrySink, TextSinkReceivesMessagesAndCanBeCleared) {
  obs::TelemetrySink sink;
  std::vector<std::string> seen;
  sink.set_text_sink([&](const std::string& m) { seen.push_back(m); });
  sink.info("hello");
  sink.set_text_sink(nullptr);
  sink.info("silent");
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "hello");
  EXPECT_EQ(sink.total_events(), 2u);  // still counted after clearing
}

// ----------------------------------------------------------- telemetry ----

TEST(Telemetry, WriteTraceFilesEmitsValidJsonPair) {
  const std::string path =
      "obs_trace_test_" + std::to_string(::getpid()) + ".json";
  obs::Telemetry telemetry;
  telemetry.metrics().counter("demo.counter").inc(3);
  {
    obs::Span span = telemetry.tracer().span("demo.span");
  }
  ASSERT_TRUE(telemetry.write_trace_files(path));
  for (const std::string& file : {path, path + ".metrics.json"}) {
    std::ifstream in(file);
    ASSERT_TRUE(in.good()) << file;
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_NO_THROW(testjson::parse(text)) << file;
  }
  const auto trace = testjson::parse([&] {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }());
  EXPECT_EQ(trace.at("traceEvents").array().size(), 1u);
  std::remove(path.c_str());
  std::remove((path + ".metrics.json").c_str());
}

// ---------------------------------------------------------- json_escape ----

TEST(JsonEscape, ControlCharsQuotesAndBackslashesStayParseable) {
  // Hostile name: every escape class at once — quote, backslash, the named
  // control chars, and raw low control bytes that need \uXXXX.
  const std::string hostile = "a\"b\\c\nd\re\tf\x01g\x1f h";
  const std::string escaped = obs::json_escape(hostile);
  // No raw control byte survives into the JSON text.
  for (const char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
  EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
  // Embedded in a document, it parses back to the original bytes.
  const auto doc = testjson::parse("{\"k\":\"" + escaped + "\"}");
  EXPECT_EQ(doc.at("k").str(), hostile);
}

TEST(JsonEscape, HostileSpanNamesAndArgsYieldParseableChromeTrace) {
  // A span name and arg key chosen to break naive JSON emitters must still
  // produce a chrome_trace_json that a strict parser accepts.
  obs::Tracer tracer;
  {
    obs::Span span = tracer.span("evil\"span\\\n\x02name");
    span.arg("arg\"key\twith\x03junk", 7);
  }
  const auto doc = testjson::parse(tracer.chrome_trace_json());
  const auto& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("name").str(), "evil\"span\\\n\x02name");
  EXPECT_EQ(events[0].at("args").at("arg\"key\twith\x03junk").integer(), 7);
}

// --------------------------------------------------- clock offset & fleet ----

TEST(ClockOffsetEstimator, RecoversKnownSkewUnderSymmetricDelay) {
  // Remote clock = local clock + 5 ms. The remote sample lands exactly at
  // the RTT midpoint, so the midpoint method recovers the skew exactly.
  constexpr std::int64_t kSkewNs = 5'000'000;
  obs::ClockOffsetEstimator est;
  EXPECT_FALSE(est.valid());
  EXPECT_EQ(est.rebase(42), 42);  // identity until an observation arrives

  const std::int64_t send = 1'000'000;
  const std::int64_t recv = 1'002'000;  // RTT 2 us... ns scale: 2000 ns
  const std::int64_t midpoint = (send + recv) / 2;
  est.observe(send, recv, midpoint + kSkewNs);
  ASSERT_TRUE(est.valid());
  EXPECT_EQ(est.offset_ns(), kSkewNs);
  EXPECT_EQ(est.best_rtt_ns(), recv - send);
  EXPECT_EQ(est.rebase(midpoint + kSkewNs), midpoint);
}

TEST(ClockOffsetEstimator, AsymmetricDelayErrorIsBoundedByHalfRtt) {
  // Forward path 100 ns, return path 900 ns: the remote sample is taken
  // well before the midpoint, so the estimate is off — but by no more than
  // RTT/2, the method's guaranteed bound.
  constexpr std::int64_t kSkewNs = 1'000'000;
  obs::ClockOffsetEstimator est;
  const std::int64_t send = 0;
  const std::int64_t remote_sample_local = 100;  // after the 100 ns hop
  const std::int64_t recv = 1000;                // + 900 ns return hop
  est.observe(send, recv, remote_sample_local + kSkewNs);
  ASSERT_TRUE(est.valid());
  const std::int64_t error = est.offset_ns() - kSkewNs;
  EXPECT_LE(error < 0 ? -error : error, est.best_rtt_ns() / 2);
}

TEST(ClockOffsetEstimator, KeepsTheMinimumRttObservation) {
  obs::ClockOffsetEstimator est;
  est.observe(0, 1000, 500 + 111);     // RTT 1000, offset 111
  est.observe(0, 10000, 5000 + 999);   // worse RTT: ignored
  EXPECT_EQ(est.offset_ns(), 111);
  EXPECT_EQ(est.best_rtt_ns(), 1000);
  est.observe(0, 400, 200 + 77);       // tighter RTT: adopted
  EXPECT_EQ(est.offset_ns(), 77);
  EXPECT_EQ(est.best_rtt_ns(), 400);
}

namespace {

/// A worker snapshot whose spans are stamped on a skewed worker clock:
/// the worker's steady clock reads coordinator_time + skew.
obs::FleetSnapshot make_snapshot(std::uint32_t worker, std::uint64_t seq,
                                 std::uint64_t first_span_index,
                                 std::int64_t worker_epoch_ns) {
  obs::FleetSnapshot snap;
  snap.worker_id = worker;
  snap.seq = seq;
  snap.first_span_index = first_span_index;
  snap.trace_epoch_ns = worker_epoch_ns;
  return snap;
}

}  // namespace

TEST(FleetAggregator, RebasesWorkerSpansIntoTheCoordinatorTimeline) {
  obs::FleetAggregator fleet(nullptr, /*trace_enabled=*/true);
  ASSERT_NE(fleet.trace_id(), 0u);
  const std::int64_t epoch = fleet.epoch_ns();
  constexpr std::int64_t kSkewNs = 7'000'000;  // worker clock runs ahead

  // One exact clock observation: worker_now sampled at the RTT midpoint.
  fleet.observe_clock(0, epoch, epoch + 2000, epoch + 1000 + kSkewNs);

  // Coordinator assign span: [1 ms, 10 ms] on the coordinator clock.
  const std::uint64_t span =
      fleet.begin_assign(/*task=*/3, /*worker=*/0, /*attempt=*/0,
                         epoch + 1'000'000);
  ASSERT_NE(span, 0u);
  fleet.end_assign(span, epoch + 10'000'000, /*committed=*/true);

  // Worker compute span at coordinator time [2 ms, 5 ms], but stamped on
  // the worker clock: its epoch is the skewed image of the coordinator's.
  auto snap = make_snapshot(0, 1, 0, epoch + kSkewNs);
  obs::TraceEvent compute;
  compute.name = "task.compute";
  compute.ts_us = 2000;
  compute.dur_us = 3000;
  snap.spans = {compute};
  EXPECT_EQ(fleet.ingest(snap), 1u);

  const auto events = fleet.events();
  ASSERT_EQ(events.size(), 2u);
  // Coordinator lane first, then the worker lane; both on one timeline.
  EXPECT_EQ(events[0].pid, obs::FleetAggregator::kCoordinatorPid);
  EXPECT_EQ(events[0].event.name, "task.assign");
  EXPECT_EQ(events[0].event.ts_us, 1000u);
  EXPECT_EQ(events[0].event.dur_us, 9000u);
  EXPECT_EQ(events[1].pid, obs::FleetAggregator::kWorkerPidBase + 0);
  EXPECT_EQ(events[1].event.name, "task.compute");
  // The 7 ms skew is gone: the span rebased to its true coordinator time
  // and nests causally inside the assign window.
  EXPECT_EQ(events[1].event.ts_us, 2000u);
  EXPECT_GE(events[1].event.ts_us, events[0].event.ts_us);
  EXPECT_LE(events[1].event.ts_us + events[1].event.dur_us,
            events[0].event.ts_us + events[0].event.dur_us);
}

TEST(FleetAggregator, ReplayAndRespawnKeepCountersAndSpansExact) {
  obs::MetricsRegistry registry;
  obs::FleetAggregator fleet(&registry, /*trace_enabled=*/true);
  fleet.on_worker_fresh(4);

  auto snap = make_snapshot(4, 1, 0, 0);
  snap.counters = {{"tasks_executed", 3}};
  snap.rss_kb = 1024;
  obs::TraceEvent span;
  span.name = "task.compute";
  span.ts_us = 5;
  span.dur_us = 1;
  snap.spans = {span, span};
  EXPECT_EQ(fleet.ingest(snap), 2u);
  // An outbox replay of the same snapshot: spans below the dedup
  // high-water are skipped, and the absolute counter re-lands harmlessly.
  EXPECT_EQ(fleet.ingest(snap), 0u);

  auto snap2 = make_snapshot(4, 2, 2, 0);
  snap2.counters = {{"tasks_executed", 5}};  // absolute, not a delta
  snap2.spans = {span};
  EXPECT_EQ(fleet.ingest(snap2), 1u);

  auto metrics = registry.snapshot();
  EXPECT_EQ(metrics.counter("fleet.worker.4.tasks_executed"), 5u);
  EXPECT_EQ(metrics.counter("fleet.tasks_executed"), 5u);
  EXPECT_EQ(metrics.gauges.at("fleet.worker.4.rss_kb"), 1024);

  // Respawn: the incarnation's totals fold into the base; the fresh
  // incarnation restarts its absolute counters and span indices from zero.
  fleet.on_worker_fresh(4);
  auto snap3 = make_snapshot(4, 1, 0, 0);
  snap3.counters = {{"tasks_executed", 2}};
  snap3.spans = {span};
  EXPECT_EQ(fleet.ingest(snap3), 1u);

  metrics = registry.snapshot();
  EXPECT_EQ(metrics.counter("fleet.worker.4.tasks_executed"), 7u);
  EXPECT_EQ(metrics.counter("fleet.tasks_executed"), 7u);

  const auto summary = fleet.summary();
  EXPECT_EQ(summary.workers_reporting, 1u);
  EXPECT_EQ(summary.snapshots, 4u);  // every ingest call, replay included
  EXPECT_EQ(summary.tasks_executed, 7u);
  EXPECT_EQ(summary.rss_kb, 1024);
}

TEST(FleetAggregator, HostileNamesStillEmitParseableJson) {
  obs::MetricsRegistry registry;
  obs::FleetAggregator fleet(&registry, /*trace_enabled=*/true);
  const std::uint64_t span =
      fleet.begin_assign(1, 0, 0, fleet.epoch_ns());
  fleet.end_assign(span, fleet.epoch_ns() + 1000, true);

  auto snap = make_snapshot(0, 1, 0, fleet.epoch_ns());
  obs::TraceEvent evil;
  evil.name = "span\"\\\n\x1bname";
  evil.args = {{"arg\"key\n", 9}};
  snap.spans = {evil};
  snap.counters = {{"cnt\"with\tjunk", 2}};
  fleet.ingest(snap);

  const auto trace = testjson::parse(fleet.chrome_trace_json());
  bool found = false;
  for (const auto& e : trace.at("traceEvents").array()) {
    if (e.at("ph").str() != "X") continue;
    if (e.at("name").str() == "span\"\\\n\x1bname") {
      found = true;
      EXPECT_EQ(e.at("args").at("arg\"key\n").integer(), 9);
    }
  }
  EXPECT_TRUE(found);

  const auto metrics = testjson::parse(fleet.fleet_metrics_json());
  const auto& workers = metrics.at("workers").array();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].at("counters").at("cnt\"with\tjunk").integer(), 2);
  EXPECT_EQ(metrics.at("fleet").at("workers_reporting").integer(), 1);
}

}  // namespace
}  // namespace weakkeys

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include <chrono>

#include "util/date.hpp"
#include "util/fault_injector.hpp"
#include "util/hex.hpp"
#include "util/net.hpp"
#include "util/prng.hpp"
#include "util/retry.hpp"
#include "util/thread_pool.hpp"

namespace weakkeys::util {
namespace {

// ---------------------------------------------------------------- Date ----

TEST(Date, DefaultIsEpoch) {
  const Date d;
  EXPECT_EQ(d.year(), 1970);
  EXPECT_EQ(d.month(), 1);
  EXPECT_EQ(d.day(), 1);
  EXPECT_EQ(d.days_since_epoch(), 0);
}

TEST(Date, RoundTripsToString) {
  const Date d(2014, 4, 8);
  EXPECT_EQ(d.to_string(), "2014-04-08");
  EXPECT_EQ(Date::parse("2014-04-08"), d);
}

TEST(Date, RejectsMalformedParse) {
  EXPECT_THROW(Date::parse("2014/04/08"), std::invalid_argument);
  EXPECT_THROW(Date::parse("2014-4-8"), std::invalid_argument);
  EXPECT_THROW(Date::parse("hello"), std::invalid_argument);
  EXPECT_THROW(Date::parse("2014-13-01"), std::invalid_argument);
  EXPECT_THROW(Date::parse("2015-02-29"), std::invalid_argument);
}

TEST(Date, RejectsInvalidCivilDates) {
  EXPECT_THROW(Date(2015, 2, 29), std::invalid_argument);
  EXPECT_THROW(Date(2015, 0, 1), std::invalid_argument);
  EXPECT_THROW(Date(2015, 1, 0), std::invalid_argument);
  EXPECT_THROW(Date(2015, 4, 31), std::invalid_argument);
  EXPECT_NO_THROW(Date(2016, 2, 29));  // leap year
}

TEST(Date, LeapYearRules) {
  EXPECT_TRUE(Date::is_leap_year(2016));
  EXPECT_TRUE(Date::is_leap_year(2000));
  EXPECT_FALSE(Date::is_leap_year(1900));
  EXPECT_FALSE(Date::is_leap_year(2015));
  EXPECT_EQ(Date::days_in_month(2016, 2), 29);
  EXPECT_EQ(Date::days_in_month(2015, 2), 28);
}

TEST(Date, DaysSinceEpochKnownValues) {
  EXPECT_EQ(Date(2000, 3, 1).days_since_epoch(), 11017);
  EXPECT_EQ(Date(1969, 12, 31).days_since_epoch(), -1);
}

TEST(Date, DayRoundTripAcrossRange) {
  for (std::int64_t days = -200000; days <= 200000; days += 379) {
    const Date d = Date::from_days_since_epoch(days);
    EXPECT_EQ(d.days_since_epoch(), days);
  }
}

TEST(Date, AddMonthsClampsDay) {
  EXPECT_EQ(Date(2014, 1, 31).add_months(1), Date(2014, 2, 28));
  EXPECT_EQ(Date(2016, 1, 31).add_months(1), Date(2016, 2, 29));
  EXPECT_EQ(Date(2014, 1, 15).add_months(-13), Date(2012, 12, 15));
}

TEST(Date, AddDays) {
  EXPECT_EQ(Date(2014, 12, 31).add_days(1), Date(2015, 1, 1));
  EXPECT_EQ(Date(2014, 1, 1).add_days(-1), Date(2013, 12, 31));
}

TEST(Date, MonthsBetween) {
  EXPECT_EQ(months_between(Date(2010, 7, 1), Date(2016, 5, 30)), 70);
  EXPECT_EQ(months_between(Date(2016, 5, 1), Date(2010, 7, 31)), -70);
  EXPECT_EQ(months_between(Date(2014, 4, 30), Date(2014, 4, 1)), 0);
}

TEST(Date, Ordering) {
  EXPECT_LT(Date(2014, 4, 7), Date(2014, 4, 8));
  EXPECT_LT(Date(2013, 12, 31), Date(2014, 1, 1));
  EXPECT_GT(Date(2014, 4, 8), Date(2013, 4, 8));
}

// ----------------------------------------------------------------- hex ----

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
  EXPECT_EQ(from_hex("0001ABFF10"), data);
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // bad digit
}

// ---------------------------------------------------------------- PRNG ----

TEST(Prng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const auto av = a();
    EXPECT_EQ(av, b());
    if (av != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Prng, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Prng, BelowCoversSmallRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Prng, ChanceExtremes) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsSubmittedWork) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, TaskExceptionsDoNotWedgeThePool) {
  // A throwing task must surface through its future and leave the worker
  // alive: later submissions still run on the same pool.
  ThreadPool pool(2);
  for (int round = 0; round < 8; ++round) {
    auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
  }
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, ParallelForDrainsAllTasksWhenOneThrows) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   executed++;
                                   if (i == 3) {
                                     throw std::invalid_argument("task 3");
                                   }
                                 }),
               std::invalid_argument);
  // parallel_for's contract: every task finished before the rethrow, so
  // nothing still references the closure after the call returns.
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, ManyTasksDrainBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i) {
      futures.push_back(pool.submit([&count] { count++; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 500);
}

// --------------------------------------------------------- RetryPolicy ----

TEST(RetryPolicy, DelayIsCappedExponential) {
  RetryPolicy policy;
  policy.base = std::chrono::milliseconds(3);
  policy.cap = std::chrono::milliseconds(20);
  EXPECT_EQ(policy.delay(0), std::chrono::milliseconds(3));
  EXPECT_EQ(policy.delay(1), std::chrono::milliseconds(6));
  EXPECT_EQ(policy.delay(2), std::chrono::milliseconds(12));
  EXPECT_EQ(policy.delay(3), std::chrono::milliseconds(20));  // capped
  EXPECT_EQ(policy.delay(63), std::chrono::milliseconds(20));
  // Shift counts far past 64 bits must not wrap back below the cap.
  EXPECT_EQ(policy.delay(1000), std::chrono::milliseconds(20));
}

TEST(RetryPolicy, ExhaustionIsZeroBased) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_FALSE(policy.exhausted(0));
  EXPECT_FALSE(policy.exhausted(2));
  EXPECT_TRUE(policy.exhausted(3));
  EXPECT_TRUE(policy.exhausted(4));
}

TEST(RetryPolicy, JitterIsDeterministicBoundedAndKeyed) {
  RetryPolicy policy;
  policy.base = std::chrono::milliseconds(8);
  policy.cap = std::chrono::milliseconds(64);
  policy.jitter = 0.5;
  policy.seed = 99;

  bool spread = false;
  for (std::uint64_t key = 0; key < 32; ++key) {
    for (std::size_t attempt = 0; attempt < 4; ++attempt) {
      const auto d = policy.jittered_delay(key, attempt);
      // Identical (seed, key, attempt) always replays identically.
      EXPECT_EQ(d, policy.jittered_delay(key, attempt));
      const auto base = policy.delay(attempt);
      EXPECT_GE(d, base / 2);
      EXPECT_LE(d, std::min(base + base / 2, policy.cap));
      if (d != policy.jittered_delay(key + 1, attempt)) spread = true;
    }
  }
  EXPECT_TRUE(spread);  // keys actually de-synchronize

  policy.jitter = 0.0;
  EXPECT_EQ(policy.jittered_delay(7, 2), policy.delay(2));
}

// ---------------------------------------------------------------- net ----

#if defined(WEAKKEYS_HAVE_NET)

TEST(Net, ListenConnectAcceptRoundTrip) {
  net::UniqueFd listener(net::listen_tcp("127.0.0.1", 0, 4));
  ASSERT_TRUE(listener.valid());
  const int port = net::local_port(listener.get());
  ASSERT_GT(port, 0);

  net::UniqueFd client(net::connect_tcp("127.0.0.1",
                                        static_cast<std::uint16_t>(port),
                                        std::chrono::milliseconds(2000)));
  ASSERT_TRUE(client.valid());
  net::UniqueFd server(net::accept_cloexec(listener.get()));
  ASSERT_TRUE(server.valid());

  const char out[] = "weak keys remain widespread";
  ASSERT_TRUE(net::write_full(client.get(), out, sizeof out));
  EXPECT_TRUE(net::wait_readable(server.get(), std::chrono::milliseconds(2000)));
  char in[sizeof out] = {};
  ASSERT_TRUE(net::read_full(server.get(), in, sizeof in));
  EXPECT_STREQ(in, out);
}

TEST(Net, ReadFullFailsOnEofAndWaitReadableTimesOut) {
  net::UniqueFd listener(net::listen_tcp("127.0.0.1", 0, 4));
  ASSERT_TRUE(listener.valid());
  net::UniqueFd client(net::connect_tcp(
      "127.0.0.1", static_cast<std::uint16_t>(net::local_port(listener.get())),
      std::chrono::milliseconds(2000)));
  ASSERT_TRUE(client.valid());
  net::UniqueFd server(net::accept_cloexec(listener.get()));
  ASSERT_TRUE(server.valid());

  // Nothing written yet: a short wait must time out, not block.
  EXPECT_FALSE(net::wait_readable(server.get(), std::chrono::milliseconds(10)));
  client.reset();
  char buf[8];
  EXPECT_FALSE(net::read_full(server.get(), buf, sizeof buf));
}

TEST(Net, ConnectToClosedPortFails) {
  // Bind-then-close yields a port with (almost certainly) no listener.
  int port = 0;
  {
    net::UniqueFd probe(net::listen_tcp("127.0.0.1", 0, 1));
    ASSERT_TRUE(probe.valid());
    port = net::local_port(probe.get());
  }
  net::UniqueFd fd(net::connect_tcp("127.0.0.1",
                                    static_cast<std::uint16_t>(port),
                                    std::chrono::milliseconds(250)));
  EXPECT_FALSE(fd.valid());
}

TEST(Net, ConnectTimesOutAgainstBlackholedAddress) {
  // A loopback blackhole that needs no external routing: a listener whose
  // accept queue is full silently drops further SYNs, so the client's
  // handshake never completes. connect_tcp must give up at its own
  // deadline (ETIMEDOUT), not the kernel's minutes-long retry schedule.
  net::UniqueFd listener(net::listen_tcp("127.0.0.1", 0, 1));
  ASSERT_TRUE(listener.valid());
  const auto port = static_cast<std::uint16_t>(net::local_port(listener.get()));

  // Fill the accept queue (never accepting). Linux grants backlog+1-ish
  // slots; keep the early fds open so the queue stays full.
  std::vector<net::UniqueFd> parked;
  bool timed_out = false;
  for (int i = 0; i < 16 && !timed_out; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    net::UniqueFd fd(
        net::connect_tcp("127.0.0.1", port, std::chrono::milliseconds(150)));
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    if (fd.valid()) {
      parked.push_back(std::move(fd));
      continue;
    }
    EXPECT_EQ(errno, ETIMEDOUT);
    EXPECT_GE(elapsed.count(), 140);   // honored the deadline...
    EXPECT_LT(elapsed.count(), 2000);  // ...instead of the kernel's retries
    timed_out = true;
  }
  EXPECT_TRUE(timed_out) << "accept queue never filled";
}

TEST(Net, EnableKeepaliveOnConnectedSocket) {
  net::UniqueFd listener(net::listen_tcp("127.0.0.1", 0, 4));
  ASSERT_TRUE(listener.valid());
  net::UniqueFd client(net::connect_tcp(
      "127.0.0.1", static_cast<std::uint16_t>(net::local_port(listener.get())),
      std::chrono::milliseconds(2000)));
  ASSERT_TRUE(client.valid());
  EXPECT_TRUE(net::enable_keepalive(client.get(), 5, 2, 3));
  EXPECT_FALSE(net::enable_keepalive(-1));
}

TEST(Net, UniqueFdMovesAndCloses) {
  net::UniqueFd a(net::listen_tcp("127.0.0.1", 0, 1));
  ASSERT_TRUE(a.valid());
  const int raw = a.get();
  net::UniqueFd b(std::move(a));
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
  b.reset();
  EXPECT_FALSE(b.valid());
}

#endif  // WEAKKEYS_HAVE_NET

// ---------------------------------------------- fault injector, conn tier ----

TEST(FaultInjector, ConnDecisionsAreDeterministicAndSeedKeyed) {
  FaultConfig config;
  config.seed = 11;
  config.conn_disconnect_probability = 0.2;
  config.conn_partition_probability = 0.2;
  config.conn_half_open_probability = 0.2;
  config.conn_slow_drip_probability = 0.2;
  config.conn_partition_ms = 77;
  config.conn_drip_delay_ms = 3;
  const FaultInjector a(config);
  const FaultInjector b(config);
  config.seed = 12;
  const FaultInjector other(config);

  std::size_t faults = 0;
  bool seed_matters = false;
  std::set<ConnFaultKind> kinds;
  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
      const ConnFault x = a.decide_conn(stream, seq);
      const ConnFault y = b.decide_conn(stream, seq);
      EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
      EXPECT_EQ(x.duration_ms, y.duration_ms);
      EXPECT_EQ(x.drip_delay_ms, y.drip_delay_ms);
      if (x.any()) {
        ++faults;
        kinds.insert(x.kind);
        if (x.kind == ConnFaultKind::kPartition ||
            x.kind == ConnFaultKind::kHalfOpen) {
          EXPECT_EQ(x.duration_ms, 77u);
        }
        if (x.kind == ConnFaultKind::kSlowDrip) {
          EXPECT_EQ(x.drip_delay_ms, 3u);
        }
      }
      if (static_cast<int>(x.kind) !=
          static_cast<int>(other.decide_conn(stream, seq).kind)) {
        seed_matters = true;
      }
    }
  }
  // With 80% total probability over 800 draws every kind shows up.
  EXPECT_GT(faults, 400u);
  EXPECT_EQ(kinds.size(), 4u);
  EXPECT_TRUE(seed_matters);
}

TEST(FaultInjector, ConnStreamIsDisjointFromFrameStream) {
  // Enabling frame faults must not reshuffle the connection schedule:
  // callers rely on carrying conn seq across reconnects for determinism.
  FaultConfig conn_only;
  conn_only.seed = 21;
  conn_only.conn_disconnect_probability = 0.15;
  FaultConfig both = conn_only;
  both.frame_drop_probability = 0.3;
  both.frame_garble_probability = 0.3;
  const FaultInjector a(conn_only);
  const FaultInjector b(both);
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    EXPECT_EQ(static_cast<int>(a.decide_conn(5, seq).kind),
              static_cast<int>(b.decide_conn(5, seq).kind))
        << "seq " << seq;
  }
}

TEST(FaultInjector, ConnTierOffByDefault) {
  FaultConfig config;
  config.seed = 3;
  EXPECT_FALSE(config.any_conn_faults());
  const FaultInjector injector(config);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_FALSE(injector.decide_conn(0, seq).any());
  }
}

}  // namespace
}  // namespace weakkeys::util

// Crash-safe end-to-end resume: fork a child Study, SIGKILL it at chosen
// pipeline points (after the corpus cache publishes, mid-batch-GCD, during
// fingerprinting), then resume in-process with StudyConfig::resume and
// assert the final result set is element-for-element identical to an
// uninterrupted reference run — with only the unfinished work re-executed
// and no orphaned `*.tmp` publication files anywhere in the cache family.
//
// SIGKILL (not SIGTERM) is the point: no handler runs, no flush happens,
// the process dies wherever it happens to be. Whatever survives on disk is
// exactly what the atomic-publish discipline guarantees.
#include <gtest/gtest.h>

#if defined(_WIN32)
TEST(KillResumeTest, RequiresPosix) { GTEST_SKIP() << "fork/SIGKILL harness"; }
#else

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/study.hpp"
#include "util/atomic_file.hpp"
#include "util/cancellation.hpp"

namespace weakkeys {
namespace {

constexpr std::uint64_t kSeed = 515151;

core::StudyConfig harness_config(const std::string& cache_path) {
  core::StudyConfig config;
  config.sim.seed = kSeed;
  config.sim.scale = 0.02;
  config.sim.miller_rabin_rounds = 4;
  config.batch_gcd_subsets = 3;
  config.threads = 2;
  config.fault_tolerant = true;  // journaled coordinator path
  config.cache_path = cache_path;
  return config;
}

const std::vector<std::string>& cache_suffixes() {
  static const std::vector<std::string> suffixes = {"", ".factors", ".gcdckpt",
                                                    ".study"};
  return suffixes;
}

void remove_cache_family(const std::string& cache_path) {
  for (const auto& suffix : cache_suffixes()) {
    std::remove((cache_path + suffix).c_str());
    std::remove(util::atomic_tmp_path(cache_path + suffix).c_str());
  }
}

void expect_no_tmp_orphans(const std::string& cache_path) {
  for (const auto& suffix : cache_suffixes()) {
    const std::string tmp = util::atomic_tmp_path(cache_path + suffix);
    std::ifstream probe(tmp);
    EXPECT_FALSE(probe.good()) << "orphan publication file: " << tmp;
  }
}

/// Canonical content fingerprint of a finished study: every factor record
/// (n, p, q, class) plus the vulnerable set, order-independent.
std::vector<std::string> result_fingerprint(const core::Study& study) {
  std::vector<std::string> lines;
  for (const auto& record : study.factored()) {
    lines.push_back(record.n.to_hex() + "|" + record.p.to_hex() + "|" +
                    record.q.to_hex() + "|" +
                    std::to_string(static_cast<int>(record.divisor_class)));
  }
  for (const auto& hex : study.vulnerable().hex()) {
    lines.push_back("vuln|" + hex);
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

/// The uninterrupted reference run, computed once for the whole suite.
class KillResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    reference_ = new core::Study(harness_config(""));
    reference_->run();
    reference_fingerprint_ = result_fingerprint(*reference_);
    ASSERT_FALSE(reference_fingerprint_.empty());
  }

  static void TearDownTestSuite() {
    delete reference_;
    reference_ = nullptr;
  }

  /// Forks a child that runs the study under `setup` until the kill trigger
  /// fires. Returns true when the child died by SIGKILL (the harness
  /// contract); a child that survives to completion _exit()s with a
  /// distinct code and fails the expectation.
  static bool run_child_until_killed(
      const std::function<void(core::Study&)>& arm_kill,
      const core::StudyConfig& config) {
    ::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child: arm the kill trigger and run. Never returns normally.
      {
        core::Study study(config);
        arm_kill(study);
        try {
          study.run();
        } catch (...) {
          ::_exit(43);  // died some way other than SIGKILL: harness bug
        }
      }
      ::_exit(42);  // ran to completion: the trigger never fired
    }
    EXPECT_GT(pid, 0) << "fork failed";
    if (pid <= 0) return false;
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status))
        << "child was not killed (exit code "
        << (WIFEXITED(status) ? WEXITSTATUS(status) : -1) << ")";
    if (!WIFSIGNALED(status)) return false;
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    return WTERMSIG(status) == SIGKILL;
  }

  /// Resumes from whatever the killed child left behind and checks the
  /// combined result is byte-identical to the uninterrupted reference.
  static void resume_and_verify(const std::string& cache_path,
                                core::Study& resumed) {
    resumed.run();
    EXPECT_EQ(resumed.run_state(), core::RunState::kDone);
    EXPECT_EQ(result_fingerprint(resumed), reference_fingerprint_);
    expect_no_tmp_orphans(cache_path);
  }

  static core::Study* reference_;
  static std::vector<std::string> reference_fingerprint_;
};

core::Study* KillResumeTest::reference_ = nullptr;
std::vector<std::string> KillResumeTest::reference_fingerprint_;

TEST_F(KillResumeTest, KillAfterCorpusPublishResumesFromCorpusCache) {
  const std::string cache = "kill_resume_corpus.cache";
  remove_cache_family(cache);
  auto config = harness_config(cache);

  // Die the instant the corpus cache publication is announced: the scan
  // corpus survives, nothing downstream exists yet.
  config.log = [](const std::string& message) {
    if (message.rfind("corpus cached to", 0) == 0) ::raise(SIGKILL);
  };
  ASSERT_TRUE(run_child_until_killed([](core::Study&) {}, config));
  {
    std::ifstream corpus(cache, std::ios::binary);
    ASSERT_TRUE(corpus.good()) << "corpus cache did not survive the kill";
  }

  auto resume_config = harness_config(cache);
  resume_config.resume = true;
  core::Study resumed(resume_config);
  resume_and_verify(cache, resumed);
  // The simulation was skipped; factoring ran fresh (no journal existed).
  EXPECT_EQ(resumed.telemetry().metrics().counter("cache.corpus.hit").value(),
            1u);
  EXPECT_EQ(resumed.coordinator_stats().tasks_resumed, 0u);
  remove_cache_family(cache);
}

TEST_F(KillResumeTest, KillMidFactorResumesOnlyUnfinishedTasks) {
  const std::string cache = "kill_resume_midgcd.cache";
  remove_cache_family(cache);
  const auto config = harness_config(cache);

  // A spin watcher inside the child SIGKILLs the process as soon as two
  // remainder-tree tasks have committed to the journal — squarely inside
  // the batch-GCD stage, possibly mid-append of the next record.
  ASSERT_TRUE(run_child_until_killed(
      [](core::Study& study) {
        auto& executed =
            study.telemetry().metrics().counter("coordinator.tasks_executed");
        std::thread([&executed] {
          while (executed.value() < 2) std::this_thread::yield();
          ::raise(SIGKILL);
        }).detach();
      },
      config));

  auto resume_config = harness_config(cache);
  resume_config.resume = true;
  core::Study resumed(resume_config);
  resume_and_verify(cache, resumed);
  const auto& stats = resumed.coordinator_stats();
  EXPECT_GT(stats.tasks_resumed, 0u) << "journal did not survive the kill";
  EXPECT_LT(stats.tasks_resumed, stats.tasks) << "kill landed after the run";
  EXPECT_EQ(stats.tasks_resumed + stats.tasks_executed, stats.tasks);
  EXPECT_EQ(resumed.telemetry().metrics().counter("cache.corpus.hit").value(),
            1u);
  remove_cache_family(cache);
}

TEST_F(KillResumeTest, KillDuringFingerprintResumesFromFactorCache) {
  const std::string cache = "kill_resume_fprint.cache";
  remove_cache_family(cache);
  auto config = harness_config(cache);

  // "found N ... cliques" is the first fingerprint-stage announcement; by
  // then the factor cache and the kFactored study checkpoint are on disk.
  config.log = [](const std::string& message) {
    if (message.rfind("found ", 0) == 0) ::raise(SIGKILL);
  };
  ASSERT_TRUE(run_child_until_killed([](core::Study&) {}, config));

  auto resume_config = harness_config(cache);
  resume_config.resume = true;
  core::Study resumed(resume_config);
  resume_and_verify(cache, resumed);
  auto& metrics = resumed.telemetry().metrics();
  EXPECT_EQ(metrics.counter("cache.corpus.hit").value(), 1u);
  EXPECT_EQ(metrics.counter("cache.factors.hit").value(), 1u);
  // The WKC1 checkpoint recorded the factoring stage as completed.
  EXPECT_EQ(metrics.counter("checkpoint.resume.stage").value(),
            static_cast<std::uint64_t>(core::StudyStage::kFactored));
  remove_cache_family(cache);
}

TEST_F(KillResumeTest, CancelLatencyIsBoundedByTwoMonitorIntervals) {
  // The acceptance bar from the lifecycle design: poll sites sit at batch
  // granularity, so an explicit cancel must unwind the pipeline in well
  // under two monitor intervals (2 x 250ms default).
  using clock = std::chrono::steady_clock;
  auto config = harness_config("");
  std::atomic<std::int64_t> cancelled_at_ns{0};
  core::Study study(config);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancelled_at_ns.store(clock::now().time_since_epoch().count());
    study.cancel("latency probe");
  });
  EXPECT_THROW(study.run(), util::Cancelled);
  const auto unwound_at = clock::now().time_since_epoch().count();
  canceller.join();
  const double latency_ms =
      static_cast<double>(unwound_at - cancelled_at_ns.load()) / 1e6;
  EXPECT_LT(latency_ms, 2.0 * 250.0)
      << "cancel took " << latency_ms << "ms to unwind";
  EXPECT_EQ(study.run_state(), core::RunState::kCancelled);
}

}  // namespace
}  // namespace weakkeys

#endif  // !_WIN32

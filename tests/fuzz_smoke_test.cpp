// Deterministic fuzz harness for the total-parsing surfaces.
//
// The contract under test: for ANY input bytes, Certificate::try_decode and
// the TlvReader try_* API return an error or a valid object — no crash, no
// exception, no UB (the CI fuzz-smoke job runs this under ASan/UBSan) — and
// the throwing wrappers throw exactly when the total API reports an error.
// Everything is seeded, so a failure reproduces from the iteration count.
//
// Iteration count comes from WEAKKEYS_FUZZ_ITERS (default keeps the suite
// fast; CI cranks it up).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cert/certificate.hpp"
#include "cert/tlv.hpp"
#include "core/scan_store.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/prng.hpp"

namespace weakkeys::cert {
namespace {

std::size_t fuzz_iters(std::size_t default_iters) {
  if (const char* env = std::getenv("WEAKKEYS_FUZZ_ITERS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return default_iters;
}

std::vector<std::vector<std::uint8_t>> seed_encodings() {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    rng::PrngRandomSource rng(s);
    rsa::KeygenOptions opts;
    opts.modulus_bits = 256;
    opts.miller_rabin_rounds = 8;
    DistinguishedName dn;
    dn.add("CN", "fuzz-host-" + std::to_string(s));
    dn.add("O", "Fuzz Networks");
    seeds.push_back(
        make_self_signed(dn, {"fuzz.example"},
                         {util::Date(2010, 1, 1), util::Date(2020, 1, 1)},
                         rsa::generate_key(rng, opts), s)
            .encode());
  }
  return seeds;
}

/// Applies 1-8 structure-unaware mutations: truncation, byte flips, inserts,
/// erases, cross-seed splices, and 32-bit length-field extremes.
std::vector<std::uint8_t> mutate(
    const std::vector<std::vector<std::uint8_t>>& seeds,
    util::Xoshiro256& rng) {
  std::vector<std::uint8_t> buf = seeds[rng.below(seeds.size())];
  const std::uint64_t mutations = 1 + rng.below(8);
  for (std::uint64_t m = 0; m < mutations && !buf.empty(); ++m) {
    switch (rng.below(6)) {
      case 0:  // truncate
        buf.resize(rng.below(buf.size() + 1));
        break;
      case 1:  // flip a byte
        buf[rng.below(buf.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        break;
      case 2:  // insert a random byte
        buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(buf.size() + 1)),
                   static_cast<std::uint8_t>(rng.below(256)));
        break;
      case 3:  // erase a byte
        buf.erase(buf.begin() +
                  static_cast<std::ptrdiff_t>(rng.below(buf.size())));
        break;
      case 4: {  // splice a chunk from another seed
        const auto& other = seeds[rng.below(seeds.size())];
        const std::size_t src = rng.below(other.size());
        const std::size_t dst = rng.below(buf.size());
        const std::size_t len =
            rng.below(std::min(other.size() - src, buf.size() - dst) + 1);
        std::copy(other.begin() + static_cast<std::ptrdiff_t>(src),
                  other.begin() + static_cast<std::ptrdiff_t>(src + len),
                  buf.begin() + static_cast<std::ptrdiff_t>(dst));
        break;
      }
      case 5: {  // overwrite a presumed length field with an extreme value
        if (buf.size() < 5) break;
        const std::size_t pos = rng.below(buf.size() - 4);
        const std::uint32_t extreme =
            rng.chance(0.5) ? 0xffffffffu
                            : 0xfffffff0u + static_cast<std::uint32_t>(
                                                rng.below(16));
        buf[pos] = static_cast<std::uint8_t>(extreme);
        buf[pos + 1] = static_cast<std::uint8_t>(extreme >> 8);
        buf[pos + 2] = static_cast<std::uint8_t>(extreme >> 16);
        buf[pos + 3] = static_cast<std::uint8_t>(extreme >> 24);
        break;
      }
    }
  }
  return buf;
}

TEST(FuzzSmoke, TryDecodeIsTotalOnMutatedCertificates) {
  const auto seeds = seed_encodings();
  util::Xoshiro256 rng(0xf022deca7ULL);
  const std::size_t iters = fuzz_iters(20000);
  std::size_t survived = 0;

  for (std::size_t i = 0; i < iters; ++i) {
    const auto buf = mutate(seeds, rng);
    DecodeResult result;
    ASSERT_NO_THROW(result = Certificate::try_decode(buf)) << "iteration " << i;
    // Exactly one of: a certificate, or an error with a field attribution.
    ASSERT_EQ(result.ok(), result.error == ParseError::kNone)
        << "iteration " << i;
    if (result.ok()) {
      ++survived;
      EXPECT_TRUE(result.field.empty());
      // A decoded certificate must be re-encodable without incident.
      ASSERT_NO_THROW((void)result.cert->encode()) << "iteration " << i;
    } else {
      EXPECT_FALSE(result.field.empty()) << "iteration " << i;
      EXPECT_NE(std::string(to_string(result.error)), "");
    }
    // The throwing wrapper is a thin veneer: throws iff try_decode fails.
    if (i % 16 == 0) {
      if (result.ok()) {
        EXPECT_NO_THROW((void)Certificate::decode(buf));
      } else {
        EXPECT_THROW((void)Certificate::decode(buf), TlvError);
      }
    }
  }
  // Mutations that only touch the signature payload survive decoding; the
  // corpus must exercise both outcomes.
  EXPECT_GT(survived, 0u);
  EXPECT_LT(survived, iters);
}

TEST(FuzzSmoke, TryDecodeIsTotalOnRandomGarbage) {
  util::Xoshiro256 rng(0xbadbadbadULL);
  const std::size_t iters = fuzz_iters(20000);
  for (std::size_t i = 0; i < iters; ++i) {
    std::vector<std::uint8_t> buf(rng.below(300));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    DecodeResult result;
    ASSERT_NO_THROW(result = Certificate::try_decode(buf)) << "iteration " << i;
    ASSERT_EQ(result.ok(), result.error == ParseError::kNone)
        << "iteration " << i;
  }
}

TEST(FuzzSmoke, TlvReaderOpSequencesNeverCrash) {
  const auto seeds = seed_encodings();
  util::Xoshiro256 rng(0x7175ebffULL);
  const std::size_t iters = fuzz_iters(20000);

  for (std::size_t i = 0; i < iters; ++i) {
    const auto buf = mutate(seeds, rng);
    TlvReader r(buf);
    // Random op sequence with random tags: must never throw from the try_*
    // API, and the position must stay inside the buffer.
    for (int op = 0; op < 12; ++op) {
      const auto tag = static_cast<std::uint8_t>(rng.below(256));
      switch (rng.below(5)) {
        case 0: {
          std::uint8_t t = 0;
          (void)r.try_peek_tag(t);
          break;
        }
        case 1: {
          std::span<const std::uint8_t> out;
          (void)r.try_read_bytes(tag, out);
          break;
        }
        case 2: {
          std::string out;
          (void)r.try_read_string(tag, out);
          break;
        }
        case 3: {
          std::uint64_t out = 0;
          (void)r.try_read_u64(tag, out);
          break;
        }
        case 4: {
          TlvReader nested;
          (void)r.try_read_nested(tag, nested);
          break;
        }
      }
      ASSERT_LE(r.remaining(), buf.size()) << "iteration " << i;
    }
  }
}

TEST(FuzzSmoke, LoadDatasetNeverThrowsOnMutatedStores) {
  // A minimal hand-built dataset keeps each iteration's I/O tiny.
  rng::PrngRandomSource krng(77);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 8;
  DistinguishedName dn;
  dn.add("CN", "store-host");
  const Certificate cert = make_self_signed(
      dn, {}, {util::Date(2012, 1, 1), util::Date(2020, 1, 1)},
      rsa::generate_key(krng, opts), 1);

  netsim::ScanSnapshot snap;
  snap.date = util::Date(2013, 1, 1);
  snap.source = "fuzz";
  for (std::uint32_t i = 0; i < 4; ++i) {
    netsim::HostRecord rec;
    rec.date = snap.date;
    rec.ip = netsim::Ipv4(i);
    rec.certificate = std::make_shared<const Certificate>(cert);
    snap.records.push_back(std::move(rec));
  }
  netsim::ScanDataset ds;
  ds.snapshots.push_back(std::move(snap));

  const core::StoreKey key{1, 2, 3, 4};
  const std::string path = "fuzz_store_test.tmp";
  core::save_dataset(ds, key, path);
  std::vector<std::uint8_t> pristine;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c = 0;
    while ((c = std::fgetc(f)) != EOF) {
      pristine.push_back(static_cast<std::uint8_t>(c));
    }
    std::fclose(f);
  }

  util::Xoshiro256 rng(0x570fefa11ULL);
  const std::size_t iters = fuzz_iters(20000) / 40;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < iters; ++i) {
    const auto buf = mutate({pristine}, rng);
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      if (!buf.empty()) std::fwrite(buf.data(), 1, buf.size(), f);
      std::fclose(f);
    }
    std::optional<netsim::ScanDataset> loaded;
    core::DatasetLoadStatus status = core::DatasetLoadStatus::kLoaded;
    ASSERT_NO_THROW(loaded = core::load_dataset(key, path, &status))
        << "iteration " << i;
    if (!loaded.has_value()) {
      ++rejected;
      EXPECT_NE(status, core::DatasetLoadStatus::kLoaded) << "iteration " << i;
    }
  }
  // The length+CRC footer rejects essentially every mutation.
  EXPECT_GT(rejected, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace weakkeys::cert

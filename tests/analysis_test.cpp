#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/chains.hpp"
#include "analysis/csv.hpp"
#include "analysis/lifetimes.hpp"
#include "analysis/events.hpp"
#include "analysis/report.hpp"
#include "analysis/timeseries.hpp"
#include "analysis/transitions.hpp"

namespace weakkeys::analysis {
namespace {

using bn::BigInt;
using netsim::HostRecord;
using netsim::Ipv4;
using netsim::Protocol;
using netsim::ScanDataset;
using netsim::ScanSnapshot;
using util::Date;

netsim::CertHandle make_cert(const std::string& vendor, std::uint64_t modulus,
                             const std::string& issuer_cn = "") {
  auto c = std::make_shared<cert::Certificate>();
  c->subject.add("CN", "host");
  c->subject.add("O", vendor);
  if (issuer_cn.empty()) {
    c->issuer = c->subject;
  } else {
    c->issuer.add("CN", issuer_cn);
  }
  c->key.n = BigInt(modulus);
  c->key.e = BigInt(65537);
  return c;
}

HostRecord record(const Date& date, std::uint32_t ip, netsim::CertHandle cert) {
  return HostRecord{date, "Test", Ipv4(ip), Protocol::kHttps, std::move(cert),
                    "", {}};
}

RecordLabeler org_labeler() {
  return [](const HostRecord& rec)
             -> std::optional<fingerprint::VendorLabel> {
    const std::string org = rec.cert().subject.get("O");
    if (org.empty()) return std::nullopt;
    return fingerprint::VendorLabel{org, "", "subject"};
  };
}

/// Three monthly snapshots; vendor "V" has 3, 4, then 2 hosts; modulus 1001
/// is vulnerable and appears on one host throughout.
ScanDataset sample_dataset() {
  ScanDataset ds;
  const auto vuln = make_cert("V", 1001);
  const auto clean1 = make_cert("V", 2001);
  const auto clean2 = make_cert("V", 2003);
  const auto clean3 = make_cert("V", 2005);
  const auto other = make_cert("W", 3001);

  ScanSnapshot s1{Date(2014, 1, 15), "Test", Protocol::kHttps, {}};
  s1.records = {record(s1.date, 1, vuln), record(s1.date, 2, clean1),
                record(s1.date, 3, clean2), record(s1.date, 9, other)};
  ScanSnapshot s2{Date(2014, 2, 15), "Test", Protocol::kHttps, {}};
  s2.records = {record(s2.date, 1, vuln), record(s2.date, 2, clean1),
                record(s2.date, 3, clean2), record(s2.date, 4, clean3)};
  ScanSnapshot s3{Date(2014, 6, 15), "Test", Protocol::kHttps, {}};
  s3.records = {record(s3.date, 1, vuln), record(s3.date, 2, clean1)};
  ds.snapshots = {s1, s2, s3};
  return ds;
}

VulnerableSet vulnerable_1001() {
  VulnerableSet v;
  v.insert(BigInt(1001));
  return v;
}

// --------------------------------------------------------- TimeSeries ----

TEST(TimeSeries, VendorCountsPerSnapshot) {
  const ScanDataset ds = sample_dataset();
  const VulnerableSet vuln = vulnerable_1001();
  const TimeSeriesBuilder builder(ds, vuln, org_labeler());
  const VendorSeries series = builder.vendor_series("V");
  ASSERT_EQ(series.points.size(), 3u);
  EXPECT_EQ(series.points[0].total_hosts, 3u);
  EXPECT_EQ(series.points[1].total_hosts, 4u);
  EXPECT_EQ(series.points[2].total_hosts, 2u);
  for (const auto& p : series.points) EXPECT_EQ(p.vulnerable_hosts, 1u);
  EXPECT_EQ(series.peak_total(), 4u);
  EXPECT_EQ(series.peak_vulnerable(), 1u);
}

TEST(TimeSeries, OverallIncludesUnlabeled) {
  const ScanDataset ds = sample_dataset();
  const VulnerableSet vuln = vulnerable_1001();
  const TimeSeriesBuilder builder(ds, vuln, org_labeler());
  const VendorSeries series = builder.overall_series();
  EXPECT_EQ(series.points[0].total_hosts, 4u);  // includes vendor W
}

TEST(TimeSeries, VendorsRankedByVulnerability) {
  const ScanDataset ds = sample_dataset();
  const VulnerableSet vuln = vulnerable_1001();
  const TimeSeriesBuilder builder(ds, vuln, org_labeler());
  const auto vendors = builder.vendors();
  ASSERT_EQ(vendors.size(), 2u);
  EXPECT_EQ(vendors[0], "V");  // vulnerable hits rank first
}

TEST(TimeSeries, AtOrBefore) {
  const ScanDataset ds = sample_dataset();
  const VulnerableSet vuln = vulnerable_1001();
  const VendorSeries s =
      TimeSeriesBuilder(ds, vuln, org_labeler()).vendor_series("V");
  EXPECT_EQ(s.at_or_before(Date(2014, 3, 1))->date, Date(2014, 2, 15));
  EXPECT_EQ(s.at_or_before(Date(2014, 1, 15))->date, Date(2014, 1, 15));
  EXPECT_EQ(s.at_or_before(Date(2013, 12, 31)), nullptr);
}

// ------------------------------------------------------------- chains ----

TEST(Chains, DropsIntermediateAtSameIp) {
  ScanSnapshot snap{Date(2014, 1, 15), "Rapid7", Protocol::kHttps, {}};
  const auto ca = make_cert("CA Org", 5001);        // self-signed CA
  auto ca_subject_cn = ca->subject.to_string();
  auto leaf = std::make_shared<cert::Certificate>();
  leaf->subject.add("CN", "www.example.com");
  leaf->issuer = ca->subject;  // issued by the CA
  leaf->key.n = BigInt(7001);
  leaf->key.e = BigInt(65537);

  snap.records = {record(snap.date, 1, leaf), record(snap.date, 1, ca),
                  record(snap.date, 2, make_cert("V", 1001))};
  const ScanSnapshot filtered = exclude_intermediates(snap);
  ASSERT_EQ(filtered.records.size(), 2u);
  for (const auto& rec : filtered.records) {
    EXPECT_NE(rec.cert().key.n, BigInt(5001));
  }
}

TEST(Chains, KeepsCaCertAtUnrelatedIp) {
  ScanSnapshot snap{Date(2014, 1, 15), "Rapid7", Protocol::kHttps, {}};
  const auto ca = make_cert("CA Org", 5001);
  auto leaf = std::make_shared<cert::Certificate>();
  leaf->subject.add("CN", "www.example.com");
  leaf->issuer = ca->subject;
  leaf->key.n = BigInt(7001);
  leaf->key.e = BigInt(65537);
  // CA appears at a *different* IP: no chain there, keep it.
  snap.records = {record(snap.date, 1, leaf), record(snap.date, 2, ca)};
  EXPECT_EQ(exclude_intermediates(snap).records.size(), 2u);
}

// -------------------------------------------------------- transitions ----

TEST(Transitions, CountsDirectionalSwitches) {
  ScanDataset ds;
  const auto vuln_cert = make_cert("V", 1001);
  const auto clean_cert = make_cert("V", 2001);
  // ip 1: vulnerable -> clean. ip 2: clean -> vulnerable.
  // ip 3: vulnerable throughout. ip 4: flaps twice.
  for (int month = 0; month < 4; ++month) {
    ScanSnapshot snap{Date(2014, 1 + month, 15), "Test", Protocol::kHttps, {}};
    snap.records = {
        record(snap.date, 1, month < 2 ? vuln_cert : clean_cert),
        record(snap.date, 2, month < 2 ? clean_cert : vuln_cert),
        record(snap.date, 3, vuln_cert),
        record(snap.date, 4, month % 2 == 0 ? vuln_cert : clean_cert),
    };
    ds.snapshots.push_back(std::move(snap));
  }
  const auto counts =
      count_transitions(ds, "V", vulnerable_1001(), org_labeler());
  EXPECT_EQ(counts.ips_ever, 4u);
  EXPECT_EQ(counts.ips_ever_vulnerable, 4u);
  EXPECT_EQ(counts.vulnerable_to_clean, 1u);
  EXPECT_EQ(counts.clean_to_vulnerable, 1u);
  EXPECT_EQ(counts.multiple_switches, 1u);
}

TEST(Transitions, OtherVendorsExcluded) {
  const ScanDataset ds = sample_dataset();
  const auto counts =
      count_transitions(ds, "W", vulnerable_1001(), org_labeler());
  EXPECT_EQ(counts.ips_ever, 1u);
  EXPECT_EQ(counts.ips_ever_vulnerable, 0u);
}

// ------------------------------------------------------------- events ----

TEST(Events, HeartbleedWindowDelta) {
  const ScanDataset ds = sample_dataset();
  const VendorSeries series =
      TimeSeriesBuilder(ds, vulnerable_1001(), org_labeler()).vendor_series("V");
  const auto delta = event_window_delta(series, Date(2014, 3, 1), 2);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->total_before, 4u);   // 2014-02 snapshot
  EXPECT_EQ(delta->total_after, 2u);    // 2014-06 snapshot
  EXPECT_DOUBLE_EQ(delta->total_drop_fraction(), 0.5);
}

TEST(Events, DeltaRequiresBothSides) {
  const ScanDataset ds = sample_dataset();
  const VendorSeries series =
      TimeSeriesBuilder(ds, vulnerable_1001(), org_labeler()).vendor_series("V");
  EXPECT_FALSE(event_window_delta(series, Date(2013, 1, 1), 2).has_value());
  EXPECT_FALSE(event_window_delta(series, Date(2016, 1, 1), 2).has_value());
}

TEST(Events, EolOnsetFindsPeak) {
  VendorSeries series;
  series.vendor = "Cisco";
  series.model = "RV082";
  for (int m = 0; m < 10; ++m) {
    // Peak at month 5.
    const std::size_t total = static_cast<std::size_t>(100 + 10 * m - (m > 5 ? 25 * (m - 5) : 0));
    series.points.push_back(
        {Date(2013, 1 + m, 15), "Test", total, 0});
  }
  const auto onset = eol_onset(series, "RV082", Date(2013, 5, 1));
  EXPECT_EQ(onset.peak_date, Date(2013, 6, 15));
  EXPECT_EQ(onset.peak_to_eol_months, 1);
  EXPECT_EQ(onset.peak_total, 150u);
  EXPECT_EQ(onset.final_total, series.points.back().total_hosts);
}

// ------------------------------------------------------------- report ----

TEST(Report, TextTableAlignsColumns) {
  TextTable table({"name", "count"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta-long-name", "22"});
  table.add_rule();
  table.add_row({"total", "23"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| beta-long-name"), std::string::npos);
  // All lines equal width.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t eol = out.find('\n', pos);
    if (width == 0) width = eol - pos;
    EXPECT_EQ(eol - pos, width);
    pos = eol + 1;
  }
}

TEST(Report, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1441437), "1,441,437");
  EXPECT_EQ(with_commas(1526222329ULL), "1,526,222,329");
}

// ---------------------------------------------------------- lifetimes ----

TEST(Lifetimes, TracksFirstLastAndIps) {
  const ScanDataset ds = sample_dataset();
  const auto lifetimes = certificate_lifetimes(ds);
  // 5 distinct certificates in the fixture.
  ASSERT_EQ(lifetimes.size(), 5u);
  // The vulnerable cert (ip 1) appears in all three snapshots.
  const auto vuln_it =
      std::find_if(lifetimes.begin(), lifetimes.end(),
                   [](const CertificateLifetime& l) { return l.sightings == 3; });
  ASSERT_NE(vuln_it, lifetimes.end());
  EXPECT_EQ(vuln_it->first_seen, Date(2014, 1, 15));
  EXPECT_EQ(vuln_it->last_seen, Date(2014, 6, 15));
  EXPECT_EQ(vuln_it->observed_months(), 5);
  EXPECT_EQ(vuln_it->distinct_ips, 1u);
}

TEST(Lifetimes, ReplacementClassification) {
  ScanDataset ds;
  const auto original = make_cert("V", 1001);
  // Renewal: same subject string, different key.
  const auto renewed = make_cert("V", 1003);
  // Takeover: different subject entirely.
  const auto stranger = make_cert("W", 7007);

  ScanSnapshot s1{Date(2014, 1, 15), "Test", Protocol::kHttps, {}};
  s1.records = {record(s1.date, 1, original), record(s1.date, 2, original)};
  ScanSnapshot s2{Date(2014, 2, 15), "Test", Protocol::kHttps, {}};
  s2.records = {record(s2.date, 1, renewed), record(s2.date, 2, stranger)};
  ds.snapshots = {s1, s2};

  const auto replacements = certificate_replacements(ds);
  ASSERT_EQ(replacements.size(), 2u);
  const auto summary = summarize_replacements(replacements);
  EXPECT_EQ(summary.renewals, 1u);
  EXPECT_EQ(summary.takeovers, 1u);
  for (const auto& r : replacements) {
    if (r.ip == 1) EXPECT_EQ(r.kind, ReplacementKind::kRenewal);
    if (r.ip == 2) EXPECT_EQ(r.kind, ReplacementKind::kTakeover);
  }
}

TEST(Lifetimes, StableCertNoReplacement) {
  const ScanDataset ds = sample_dataset();  // same cert objects re-presented
  EXPECT_TRUE(certificate_replacements(ds).empty());
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, SingleSeriesRows) {
  const ScanDataset ds = sample_dataset();
  const VendorSeries series =
      TimeSeriesBuilder(ds, vulnerable_1001(), org_labeler()).vendor_series("V");
  std::ostringstream os;
  write_series_csv(os, series);
  const std::string out = os.str();
  EXPECT_NE(out.find("date,source,total_hosts,vulnerable_hosts\n"),
            std::string::npos);
  EXPECT_NE(out.find("2014-01-15,Test,3,1\n"), std::string::npos);
  EXPECT_NE(out.find("2014-02-15,Test,4,1\n"), std::string::npos);
  EXPECT_NE(out.find("2014-06-15,Test,2,1\n"), std::string::npos);
}

TEST(Csv, MultiSeriesJoinsAndPadsGaps) {
  const ScanDataset ds = sample_dataset();
  const TimeSeriesBuilder builder(ds, vulnerable_1001(), org_labeler());
  VendorSeries v = builder.vendor_series("V");
  VendorSeries w = builder.vendor_series("W");
  w.points.pop_back();  // make W miss the last snapshot
  w.points.erase(w.points.begin());  // ...and the first

  std::ostringstream os;
  write_multi_series_csv(os, {v, w});
  const std::string out = os.str();
  EXPECT_NE(out.find("V total"), std::string::npos);
  EXPECT_NE(out.find("W vulnerable"), std::string::npos);
  // First row: V present, W padded empty.
  EXPECT_NE(out.find("2014-01-15,Test,3,1,,\n"), std::string::npos);
  // Middle row: both present.
  EXPECT_NE(out.find("2014-02-15,Test,4,1,0,0\n"), std::string::npos);
}

TEST(Report, RenderSeriesIncludesEveryPoint) {
  const ScanDataset ds = sample_dataset();
  const VendorSeries series =
      TimeSeriesBuilder(ds, vulnerable_1001(), org_labeler()).vendor_series("V");
  const std::string out = render_series(series);
  EXPECT_NE(out.find("2014-01-15"), std::string::npos);
  EXPECT_NE(out.find("2014-02-15"), std::string::npos);
  EXPECT_NE(out.find("2014-06-15"), std::string::npos);
}

}  // namespace
}  // namespace weakkeys::analysis

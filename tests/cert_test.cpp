#include <gtest/gtest.h>

#include "cert/certificate.hpp"
#include "cert/distinguished_name.hpp"
#include "cert/tlv.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"

namespace weakkeys::cert {
namespace {

rsa::RsaPrivateKey test_key(std::uint64_t seed = 21) {
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 8;
  return rsa::generate_key(rng, opts);
}

Certificate sample_cert() {
  DistinguishedName dn;
  dn.add("CN", "gateway-01");
  dn.add("O", "Acme Networks");
  return make_self_signed(dn, {"acme.example", "www.acme.example"},
                          {util::Date(2012, 1, 1), util::Date(2022, 1, 1)},
                          test_key(), 777);
}

// ------------------------------------------------------------- TLV ----

TEST(Tlv, RoundTripsPrimitives) {
  TlvWriter w;
  w.put_string(1, "hello");
  w.put_u64(2, 0xdeadbeefcafef00dULL);
  w.put_bytes(3, std::vector<std::uint8_t>{0x00, 0xff});

  TlvReader r(w.bytes());
  EXPECT_EQ(r.peek_tag(), 1);
  EXPECT_EQ(r.read_string(1), "hello");
  EXPECT_EQ(r.read_u64(2), 0xdeadbeefcafef00dULL);
  const auto bytes = r.read_bytes(3);
  EXPECT_EQ(bytes.size(), 2u);
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, NestedStructures) {
  TlvWriter inner;
  inner.put_string(5, "deep");
  TlvWriter outer;
  outer.put_nested(4, inner);

  TlvReader r(outer.bytes());
  TlvReader nested = r.read_nested(4);
  EXPECT_EQ(nested.read_string(5), "deep");
  EXPECT_TRUE(nested.at_end());
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, WrongTagThrows) {
  TlvWriter w;
  w.put_string(1, "x");
  TlvReader r(w.bytes());
  EXPECT_THROW(r.read_string(2), TlvError);
}

TEST(Tlv, TruncationThrows) {
  TlvWriter w;
  w.put_string(1, "a long enough payload");
  auto buf = w.bytes();
  buf.resize(buf.size() - 3);
  TlvReader r(buf);
  EXPECT_THROW(r.read_string(1), TlvError);
  TlvReader empty(std::span<const std::uint8_t>{});
  EXPECT_THROW((void)empty.peek_tag(), TlvError);
  EXPECT_THROW(empty.read_u64(1), TlvError);
}

TEST(Tlv, U64LengthValidated) {
  TlvWriter w;
  w.put_bytes(1, std::vector<std::uint8_t>{1, 2, 3});  // not 8 bytes
  TlvReader r(w.bytes());
  EXPECT_THROW(r.read_u64(1), TlvError);
}

// ----------------------------------------------- DistinguishedName ----

TEST(DistinguishedName, GetAndHas) {
  DistinguishedName dn;
  dn.add("CN", "host");
  dn.add("O", "Org");
  dn.add("OU", "Unit");
  EXPECT_EQ(dn.get("CN"), "host");
  EXPECT_EQ(dn.get("O"), "Org");
  EXPECT_EQ(dn.get("missing"), "");
  EXPECT_TRUE(dn.has("OU"));
  EXPECT_FALSE(dn.has("ou"));  // case-sensitive
}

TEST(DistinguishedName, ToStringAndParse) {
  DistinguishedName dn;
  dn.add("CN", "system generated");
  dn.add("O", "Juniper");
  const std::string text = dn.to_string();
  EXPECT_EQ(text, "CN=system generated, O=Juniper");
  EXPECT_EQ(DistinguishedName::parse(text), dn);
  EXPECT_EQ(DistinguishedName::parse(""), DistinguishedName());
  EXPECT_THROW(DistinguishedName::parse("no-equals-sign"),
               std::invalid_argument);
}

TEST(DistinguishedName, FirstValueWinsOnDuplicates) {
  DistinguishedName dn;
  dn.add("CN", "first");
  dn.add("CN", "second");
  EXPECT_EQ(dn.get("CN"), "first");
}

// --------------------------------------------------------- Certificate ----

TEST(Certificate, EncodeDecodeRoundTrip) {
  const Certificate original = sample_cert();
  const Certificate decoded = Certificate::decode(original.encode());
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.fingerprint_hex(), original.fingerprint_hex());
}

TEST(Certificate, SelfSignedVerifies) {
  const Certificate cert = sample_cert();
  EXPECT_TRUE(cert.is_self_signed());
  EXPECT_TRUE(cert.verify_signature(cert.key));
}

TEST(Certificate, IssuedCertificateVerifiesAgainstIssuerOnly) {
  const auto ca_key = test_key(31);
  DistinguishedName ca_dn;
  ca_dn.add("CN", "Intermediate CA 1");
  const auto leaf_key = test_key(32);
  DistinguishedName leaf_dn;
  leaf_dn.add("CN", "www.example.com");

  const Certificate leaf = make_issued(
      leaf_dn, {}, {util::Date(2013, 1, 1), util::Date(2015, 1, 1)},
      leaf_key.pub, ca_dn, ca_key, 9);
  EXPECT_FALSE(leaf.is_self_signed());
  EXPECT_TRUE(leaf.verify_signature(ca_key.pub));
  EXPECT_FALSE(leaf.verify_signature(leaf.key));
}

TEST(Certificate, ValidityWindow) {
  const Certificate cert = sample_cert();
  EXPECT_TRUE(cert.validity.contains(util::Date(2014, 4, 8)));
  EXPECT_FALSE(cert.validity.contains(util::Date(2011, 12, 31)));
  EXPECT_FALSE(cert.validity.contains(util::Date(2022, 1, 2)));
}

TEST(Certificate, FingerprintSensitiveToContent) {
  const Certificate a = sample_cert();
  Certificate b = a;
  b.serial += 1;
  EXPECT_NE(a.fingerprint_hex(), b.fingerprint_hex());
}

TEST(Certificate, BitFlipChangesExactlyOneBit) {
  const Certificate original = sample_cert();
  for (std::size_t bit : {0u, 1u, 100u, 255u}) {
    const Certificate flipped = original.with_modulus_bit_flipped(bit);
    EXPECT_NE(flipped.key.n, original.key.n);
    // XOR distance is exactly one bit: flipping back restores the modulus.
    EXPECT_EQ(flipped.with_modulus_bit_flipped(bit).key.n, original.key.n);
    // Signature untouched and therefore now invalid.
    EXPECT_EQ(flipped.signature, original.signature);
    EXPECT_FALSE(flipped.verify_signature(flipped.key));
  }
}

TEST(Certificate, DecodeRejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0x01, 0x02, 0x03};
  EXPECT_THROW(Certificate::decode(junk), TlvError);
}

}  // namespace
}  // namespace weakkeys::cert

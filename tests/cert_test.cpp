#include <gtest/gtest.h>

#include "cert/certificate.hpp"
#include "cert/distinguished_name.hpp"
#include "cert/tlv.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"

namespace weakkeys::cert {
namespace {

rsa::RsaPrivateKey test_key(std::uint64_t seed = 21) {
  rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.miller_rabin_rounds = 8;
  return rsa::generate_key(rng, opts);
}

Certificate sample_cert() {
  DistinguishedName dn;
  dn.add("CN", "gateway-01");
  dn.add("O", "Acme Networks");
  return make_self_signed(dn, {"acme.example", "www.acme.example"},
                          {util::Date(2012, 1, 1), util::Date(2022, 1, 1)},
                          test_key(), 777);
}

// ------------------------------------------------------------- TLV ----

TEST(Tlv, RoundTripsPrimitives) {
  TlvWriter w;
  w.put_string(1, "hello");
  w.put_u64(2, 0xdeadbeefcafef00dULL);
  w.put_bytes(3, std::vector<std::uint8_t>{0x00, 0xff});

  TlvReader r(w.bytes());
  EXPECT_EQ(r.peek_tag(), 1);
  EXPECT_EQ(r.read_string(1), "hello");
  EXPECT_EQ(r.read_u64(2), 0xdeadbeefcafef00dULL);
  const auto bytes = r.read_bytes(3);
  EXPECT_EQ(bytes.size(), 2u);
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, NestedStructures) {
  TlvWriter inner;
  inner.put_string(5, "deep");
  TlvWriter outer;
  outer.put_nested(4, inner);

  TlvReader r(outer.bytes());
  TlvReader nested = r.read_nested(4);
  EXPECT_EQ(nested.read_string(5), "deep");
  EXPECT_TRUE(nested.at_end());
  EXPECT_TRUE(r.at_end());
}

TEST(Tlv, WrongTagThrows) {
  TlvWriter w;
  w.put_string(1, "x");
  TlvReader r(w.bytes());
  EXPECT_THROW(r.read_string(2), TlvError);
}

TEST(Tlv, TruncationThrows) {
  TlvWriter w;
  w.put_string(1, "a long enough payload");
  auto buf = w.bytes();
  buf.resize(buf.size() - 3);
  TlvReader r(buf);
  EXPECT_THROW(r.read_string(1), TlvError);
  TlvReader empty(std::span<const std::uint8_t>{});
  EXPECT_THROW((void)empty.peek_tag(), TlvError);
  EXPECT_THROW(empty.read_u64(1), TlvError);
}

TEST(Tlv, U64LengthValidated) {
  TlvWriter w;
  w.put_bytes(1, std::vector<std::uint8_t>{1, 2, 3});  // not 8 bytes
  TlvReader r(w.bytes());
  EXPECT_THROW(r.read_u64(1), TlvError);
}

TEST(Tlv, TotalApiReportsReasonsAndPreservesPosition) {
  TlvWriter w;
  w.put_string(1, "payload");
  TlvReader r(w.bytes());

  std::string out;
  EXPECT_EQ(r.try_read_string(2, out), ParseError::kUnexpectedTag);
  EXPECT_EQ(r.remaining(), w.bytes().size());  // untouched on failure
  std::uint64_t v = 0;
  EXPECT_EQ(r.try_read_u64(1, v), ParseError::kBadFieldWidth);
  EXPECT_EQ(r.remaining(), w.bytes().size());  // rewound after payload read
  EXPECT_EQ(r.try_read_string(1, out), ParseError::kNone);
  EXPECT_EQ(out, "payload");
  EXPECT_EQ(r.try_read_string(1, out), ParseError::kEndOfInput);
}

TEST(Tlv, HugeLengthHeaderRejectedWithoutOverflow) {
  // Regression: the old bounds check computed pos_ + 5 + len, which wraps
  // for a hostile 0xFFFFFFFF length on 32-bit size_t and reads out of
  // bounds. The remaining()-based check must reject, not wrap.
  for (const std::uint32_t len : {0xffffffffu, 0xfffffffbu, 0xfffffff0u}) {
    std::vector<std::uint8_t> buf = {
        0x01, static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 24)};
    buf.insert(buf.end(), {0xaa, 0xbb, 0xcc});  // a little real payload
    TlvReader r(buf);
    std::span<const std::uint8_t> out;
    EXPECT_EQ(r.try_read_bytes(1, out), ParseError::kLengthOverrun);
    EXPECT_EQ(r.remaining(), buf.size());
    TlvReader throwing(buf);
    EXPECT_THROW(throwing.read_bytes(1), TlvError);
    TlvReader nested(buf);
    TlvReader inner;
    EXPECT_EQ(nested.try_read_nested(1, inner), ParseError::kLengthOverrun);
  }
}

TEST(Tlv, TruncatedHeaderDistinctFromEndOfInput) {
  const std::vector<std::uint8_t> partial = {0x01, 0x02};
  TlvReader r(partial);
  std::span<const std::uint8_t> out;
  EXPECT_EQ(r.try_read_bytes(1, out), ParseError::kTruncatedHeader);
  TlvReader empty(std::span<const std::uint8_t>{});
  EXPECT_EQ(empty.try_read_bytes(1, out), ParseError::kEndOfInput);
  std::uint8_t tag = 0;
  EXPECT_EQ(empty.try_peek_tag(tag), ParseError::kEndOfInput);
}

// ----------------------------------------------- DistinguishedName ----

TEST(DistinguishedName, GetAndHas) {
  DistinguishedName dn;
  dn.add("CN", "host");
  dn.add("O", "Org");
  dn.add("OU", "Unit");
  EXPECT_EQ(dn.get("CN"), "host");
  EXPECT_EQ(dn.get("O"), "Org");
  EXPECT_EQ(dn.get("missing"), "");
  EXPECT_TRUE(dn.has("OU"));
  EXPECT_FALSE(dn.has("ou"));  // case-sensitive
}

TEST(DistinguishedName, ToStringAndParse) {
  DistinguishedName dn;
  dn.add("CN", "system generated");
  dn.add("O", "Juniper");
  const std::string text = dn.to_string();
  EXPECT_EQ(text, "CN=system generated, O=Juniper");
  EXPECT_EQ(DistinguishedName::parse(text), dn);
  EXPECT_EQ(DistinguishedName::parse(""), DistinguishedName());
  EXPECT_THROW(DistinguishedName::parse("no-equals-sign"),
               std::invalid_argument);
}

TEST(DistinguishedName, FirstValueWinsOnDuplicates) {
  DistinguishedName dn;
  dn.add("CN", "first");
  dn.add("CN", "second");
  EXPECT_EQ(dn.get("CN"), "first");
}

// --------------------------------------------------------- Certificate ----

TEST(Certificate, EncodeDecodeRoundTrip) {
  const Certificate original = sample_cert();
  const Certificate decoded = Certificate::decode(original.encode());
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.fingerprint_hex(), original.fingerprint_hex());
}

TEST(Certificate, SelfSignedVerifies) {
  const Certificate cert = sample_cert();
  EXPECT_TRUE(cert.is_self_signed());
  EXPECT_TRUE(cert.verify_signature(cert.key));
}

TEST(Certificate, IssuedCertificateVerifiesAgainstIssuerOnly) {
  const auto ca_key = test_key(31);
  DistinguishedName ca_dn;
  ca_dn.add("CN", "Intermediate CA 1");
  const auto leaf_key = test_key(32);
  DistinguishedName leaf_dn;
  leaf_dn.add("CN", "www.example.com");

  const Certificate leaf = make_issued(
      leaf_dn, {}, {util::Date(2013, 1, 1), util::Date(2015, 1, 1)},
      leaf_key.pub, ca_dn, ca_key, 9);
  EXPECT_FALSE(leaf.is_self_signed());
  EXPECT_TRUE(leaf.verify_signature(ca_key.pub));
  EXPECT_FALSE(leaf.verify_signature(leaf.key));
}

TEST(Certificate, ValidityWindow) {
  const Certificate cert = sample_cert();
  EXPECT_TRUE(cert.validity.contains(util::Date(2014, 4, 8)));
  EXPECT_FALSE(cert.validity.contains(util::Date(2011, 12, 31)));
  EXPECT_FALSE(cert.validity.contains(util::Date(2022, 1, 2)));
}

TEST(Certificate, FingerprintSensitiveToContent) {
  const Certificate a = sample_cert();
  Certificate b = a;
  b.serial += 1;
  EXPECT_NE(a.fingerprint_hex(), b.fingerprint_hex());
}

TEST(Certificate, BitFlipChangesExactlyOneBit) {
  const Certificate original = sample_cert();
  for (std::size_t bit : {0u, 1u, 100u, 255u}) {
    const Certificate flipped = original.with_modulus_bit_flipped(bit);
    EXPECT_NE(flipped.key.n, original.key.n);
    // XOR distance is exactly one bit: flipping back restores the modulus.
    EXPECT_EQ(flipped.with_modulus_bit_flipped(bit).key.n, original.key.n);
    // Signature untouched and therefore now invalid.
    EXPECT_EQ(flipped.signature, original.signature);
    EXPECT_FALSE(flipped.verify_signature(flipped.key));
  }
}

TEST(Certificate, DecodeRejectsGarbage) {
  const std::vector<std::uint8_t> junk = {0x01, 0x02, 0x03};
  EXPECT_THROW(Certificate::decode(junk), TlvError);
}

// ------------------------------------------- malformed-encoding table ----

// Mirrors the private tag enum in certificate.cpp — the table hand-builds
// encodings at the TLV level, below the Certificate API.
enum BadTag : std::uint8_t {
  kCert = 0x01,
  kTbs = 0x02,
  kSerial = 0x03,
  kSubject = 0x04,
  kIssuer = 0x05,
  kSan = 0x06,
  kNotBefore = 0x08,
  kNotAfter = 0x09,
  kModulus = 0x0a,
  kExponent = 0x0b,
  kSigAlg = 0x0c,
  kSignature = 0x0d,
  kDnType = 0x0f,
  kDnValue = 0x10,
};

/// Knobs for building a certificate encoding with exactly one field broken.
struct BadEncodingSpec {
  std::vector<std::uint8_t> serial =
      std::vector<std::uint8_t>(8, 0x11);  ///< must be 8 bytes to be valid
  bool bad_subject_inner = false;  ///< wrong tag inside the subject DN
  std::string not_before = "2012-01-01";
  bool trailing_in_tbs = false;
  bool trailing_after_cert = false;
};

std::vector<std::uint8_t> build_encoding(const BadEncodingSpec& spec) {
  TlvWriter tbs;
  tbs.put_bytes(kSerial, spec.serial);
  {
    TlvWriter dn;
    if (spec.bad_subject_inner) {
      dn.put_string(kDnValue, "value-without-type");  // kDnType expected first
    } else {
      dn.put_string(kDnType, "CN");
      dn.put_string(kDnValue, "host");
    }
    tbs.put_nested(kSubject, dn);
  }
  {
    TlvWriter dn;
    dn.put_string(kDnType, "CN");
    dn.put_string(kDnValue, "host");
    tbs.put_nested(kIssuer, dn);
  }
  tbs.put_nested(kSan, TlvWriter{});
  tbs.put_string(kNotBefore, spec.not_before);
  tbs.put_string(kNotAfter, "2022-01-01");
  tbs.put_bytes(kModulus, std::vector<std::uint8_t>{0x01, 0x02, 0x03});
  tbs.put_bytes(kExponent, std::vector<std::uint8_t>{0x01, 0x00, 0x01});
  tbs.put_string(kSigAlg, "sha256WithRSAEncryption");
  if (spec.trailing_in_tbs) tbs.put_string(0x7f, "junk after sig-alg");

  TlvWriter body;
  body.put_bytes(kTbs, tbs.bytes());
  body.put_bytes(kSignature, std::vector<std::uint8_t>{0xde, 0xad});
  TlvWriter outer;
  outer.put_nested(kCert, body);
  auto bytes = outer.bytes();
  if (spec.trailing_after_cert) bytes.insert(bytes.end(), {0x00, 0x00});
  return bytes;
}

TEST(Certificate, MalformedEncodingTableMapsToExactParseError) {
  struct Case {
    const char* name;
    std::vector<std::uint8_t> bytes;
    ParseError expected;
    const char* field;
  };

  auto wrong_outer_tag = build_encoding({});
  wrong_outer_tag[0] = 0x2a;
  auto huge_outer_length = build_encoding({});
  huge_outer_length[1] = 0xff;
  huge_outer_length[2] = 0xff;
  huge_outer_length[3] = 0xff;
  huge_outer_length[4] = 0xff;

  const std::vector<Case> cases = {
      {"empty buffer", {}, ParseError::kEndOfInput, "certificate"},
      {"bare tag byte", {kCert}, ParseError::kTruncatedHeader, "certificate"},
      {"partial length header",
       {kCert, 0x10, 0x00},
       ParseError::kTruncatedHeader,
       "certificate"},
      {"wrong outer tag", wrong_outer_tag, ParseError::kUnexpectedTag,
       "certificate"},
      {"overlong outer length", huge_outer_length, ParseError::kLengthOverrun,
       "certificate"},
      {"3-byte serial", build_encoding({.serial = {0x01, 0x02, 0x03}}),
       ParseError::kBadFieldWidth, "serial"},
      {"wrong tag inside subject DN",
       build_encoding({.bad_subject_inner = true}), ParseError::kBadDn,
       "subject"},
      {"unparseable not-before", build_encoding({.not_before = "yesterday"}),
       ParseError::kBadDate, "not-before"},
      {"trailing field in tbs", build_encoding({.trailing_in_tbs = true}),
       ParseError::kTrailingGarbage, "tbs"},
      {"trailing bytes after certificate",
       build_encoding({.trailing_after_cert = true}),
       ParseError::kTrailingGarbage, "certificate"},
  };

  // Control: the unmutated template decodes.
  ASSERT_TRUE(Certificate::try_decode(build_encoding({})).ok());

  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const DecodeResult result = Certificate::try_decode(c.bytes);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error, c.expected);
    EXPECT_EQ(result.field, c.field);
    // The throwing wrapper reports the same reason in its message.
    try {
      (void)Certificate::decode(c.bytes);
      FAIL() << "decode did not throw";
    } catch (const TlvError& e) {
      EXPECT_NE(std::string(e.what()).find(to_string(c.expected)),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Certificate, TruncationAtEveryByteBoundaryFailsCleanly) {
  const auto full = build_encoding({});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + cut);
    const DecodeResult result = Certificate::try_decode(prefix);
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    // Every prefix breaks the outer framing: missing header or short payload.
    const ParseError expected = cut == 0 ? ParseError::kEndOfInput
                                : cut < 5 ? ParseError::kTruncatedHeader
                                          : ParseError::kLengthOverrun;
    EXPECT_EQ(result.error, expected) << "cut at " << cut;
  }
}

TEST(Certificate, TryDecodeRoundTripsWhatEncodeProduces) {
  const Certificate original = sample_cert();
  const DecodeResult result = Certificate::try_decode(original.encode());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.error, ParseError::kNone);
  EXPECT_EQ(*result.cert, original);
}

}  // namespace
}  // namespace weakkeys::cert

#include <gtest/gtest.h>

#include "dsa/dsa.hpp"
#include "dsa/nonce_attack.hpp"
#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"

namespace weakkeys::dsa {
namespace {

using bn::BigInt;

/// Shared small domain parameters (generation is the slow part).
const DsaParams& test_params() {
  static const DsaParams params = [] {
    rng::PrngRandomSource rng(77);
    return generate_params(rng, 512, 160);
  }();
  return params;
}

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(DsaParams, GeneratedParamsAreValid) {
  rng::PrngRandomSource rng(1);
  const DsaParams& params = test_params();
  EXPECT_EQ(params.p.bit_length(), 512u);
  EXPECT_EQ(params.q.bit_length(), 160u);
  EXPECT_TRUE(params.is_valid(rng));
}

TEST(DsaParams, InvalidCombinationsRejected) {
  rng::PrngRandomSource rng(2);
  EXPECT_THROW(generate_params(rng, 160, 160), std::invalid_argument);

  DsaParams broken = test_params();
  broken.g = BigInt(1);
  EXPECT_FALSE(broken.is_valid(rng));
  broken = test_params();
  broken.q += BigInt(2);
  EXPECT_FALSE(broken.is_valid(rng));
}

TEST(Dsa, SignVerifyRoundTrip) {
  rng::PrngRandomSource rng(3);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const auto message = bytes("the quick brown fox");
  const DsaSignature sig = sign(key, message, rng);
  EXPECT_TRUE(verify(key.pub, message, sig));
}

TEST(Dsa, TamperedMessageFails) {
  rng::PrngRandomSource rng(4);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const DsaSignature sig = sign(key, bytes("original"), rng);
  EXPECT_FALSE(verify(key.pub, bytes("tampered"), sig));
}

TEST(Dsa, TamperedSignatureFails) {
  rng::PrngRandomSource rng(5);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const auto message = bytes("message");
  DsaSignature sig = sign(key, message, rng);
  sig.s += BigInt(1);
  EXPECT_FALSE(verify(key.pub, message, sig));
  sig = sign(key, message, rng);
  sig.r = BigInt(0);  // out-of-range components rejected outright
  EXPECT_FALSE(verify(key.pub, message, sig));
}

TEST(Dsa, WrongKeyFails) {
  rng::PrngRandomSource rng(6);
  const DsaPrivateKey alice = generate_key(test_params(), rng);
  const DsaPrivateKey bob = generate_key(test_params(), rng);
  const auto message = bytes("hello");
  EXPECT_FALSE(verify(bob.pub, message, sign(alice, message, rng)));
}

TEST(Dsa, FreshNoncesGiveDistinctR) {
  rng::PrngRandomSource rng(7);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const DsaSignature a = sign(key, bytes("one"), rng);
  const DsaSignature b = sign(key, bytes("two"), rng);
  EXPECT_NE(a.r, b.r);
}

TEST(NonceAttack, RecoversKeyFromReusedNonce) {
  rng::PrngRandomSource rng(8);
  const DsaPrivateKey key = generate_key(test_params(), rng);

  // Two signatures with the same nonce stream state: identical k.
  rng::PrngRandomSource nonce_a(99), nonce_b(99);
  const ObservedSignature sig1{bytes("message one"),
                               sign(key, bytes("message one"), nonce_a)};
  const ObservedSignature sig2{bytes("message two"),
                               sign(key, bytes("message two"), nonce_b)};
  ASSERT_EQ(sig1.signature.r, sig2.signature.r);

  const auto recovered = recover_private_key(test_params(), sig1, sig2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key.x);
}

TEST(NonceAttack, DistinctNoncesNotRecoverable) {
  rng::PrngRandomSource rng(9);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const ObservedSignature sig1{bytes("a"), sign(key, bytes("a"), rng)};
  const ObservedSignature sig2{bytes("b"), sign(key, bytes("b"), rng)};
  EXPECT_FALSE(recover_private_key(test_params(), sig1, sig2).has_value());
}

TEST(NonceAttack, SameMessageGivesNothing) {
  rng::PrngRandomSource rng(10);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  rng::PrngRandomSource nonce_a(5), nonce_b(5);
  const ObservedSignature sig1{bytes("same"),
                               sign(key, bytes("same"), nonce_a)};
  const ObservedSignature sig2{bytes("same"),
                               sign(key, bytes("same"), nonce_b)};
  EXPECT_FALSE(recover_private_key(test_params(), sig1, sig2).has_value());
}

// The full scenario: a device with the boot-time entropy hole reboots,
// landing in the same pool state, and signs different messages with the
// same nonce. A transcript scan recovers its key.
TEST(NonceAttack, FlawedDeviceTranscriptScan) {
  rng::PrngRandomSource rng(11);
  const DsaPrivateKey key = generate_key(test_params(), rng);

  const rng::RngFlawModel flaw{.boot_entropy_bits = 2,
                               .divergence_entropy_bits = -1};
  std::vector<ObservedSignature> transcript;
  // A couple of sound signatures...
  transcript.push_back({bytes("boot banner"), sign(key, bytes("boot banner"), rng)});
  // ...then two boots colliding into pool state 1.
  {
    rng::SimulatedUrandom boot1("switch-fw", flaw, 1, 0);
    transcript.push_back(
        {bytes("syslog tick 17"), sign(key, bytes("syslog tick 17"), boot1)});
  }
  {
    rng::SimulatedUrandom boot2("switch-fw", flaw, 1, 0);
    transcript.push_back(
        {bytes("syslog tick 42"), sign(key, bytes("syslog tick 42"), boot2)});
  }

  const auto hits = scan_for_nonce_reuse(test_params(), transcript, &key.pub);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].private_key, key.x);
  EXPECT_EQ(hits[0].first_index, 1u);
  EXPECT_EQ(hits[0].second_index, 2u);
}

TEST(NonceAttack, ScanIgnoresKeysFailingVerification) {
  rng::PrngRandomSource rng(12);
  const DsaPrivateKey key = generate_key(test_params(), rng);
  const DsaPrivateKey other = generate_key(test_params(), rng);

  rng::PrngRandomSource nonce_a(31), nonce_b(31);
  std::vector<ObservedSignature> transcript = {
      {bytes("m1"), sign(key, bytes("m1"), nonce_a)},
      {bytes("m2"), sign(key, bytes("m2"), nonce_b)},
  };
  // Verifying against the *wrong* public key filters the hit out.
  EXPECT_TRUE(scan_for_nonce_reuse(test_params(), transcript, &other.pub).empty());
  EXPECT_EQ(scan_for_nonce_reuse(test_params(), transcript, &key.pub).size(), 1u);
}

}  // namespace
}  // namespace weakkeys::dsa

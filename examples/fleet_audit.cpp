// fleet_audit: what a vendor PSIRT (or network operator) would run.
//
// Simulates a product fleet across firmware revisions, audits every issued
// certificate with batch GCD, classifies implementations with the OpenSSL
// prime fingerprint, and prints a per-firmware risk report — the auditing
// workflow the paper argues vendors never performed.
#include <cstdio>
#include <map>
#include <vector>

#include "analysis/report.hpp"
#include "batchgcd/distributed.hpp"
#include "fingerprint/openssl_fingerprint.hpp"
#include "netsim/device.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace weakkeys;

  // Three firmware generations of one product line:
  //   v1.0  - flawed, no mid-keygen stir: identical default keys
  //   v2.0  - flawed with stir: factorable shared-prime keys
  //   v3.0  - fixed: full boot entropy
  struct Firmware {
    const char* name;
    netsim::DeviceModel model;
    int units;
  };
  std::vector<Firmware> firmwares;
  {
    netsim::DeviceModel base;
    base.vendor = "Acme";
    base.key_bits = 256;
    base.flawed_from = util::Date(2005, 1, 1);

    netsim::DeviceModel v1 = base;
    v1.model = "CPE-v1.0";
    v1.flawed_rng = rng::RngFlawModel{.boot_entropy_bits = 2,
                                      .divergence_entropy_bits = -1};
    firmwares.push_back({"v1.0 (no stir)", v1, 40});

    netsim::DeviceModel v2 = base;
    v2.model = "CPE-v2.0";
    v2.flawed_rng = rng::RngFlawModel{.boot_entropy_bits = 5,
                                      .divergence_entropy_bits = 40};
    firmwares.push_back({"v2.0 (stir, low boot entropy)", v2, 40});

    netsim::DeviceModel v3 = base;
    v3.model = "CPE-v3.0";
    v3.flawed_from.reset();  // healthy
    firmwares.push_back({"v3.0 (fixed)", v3, 40});
  }

  netsim::DeviceFactory factory(20160707, 8);
  std::vector<netsim::Device> fleet;
  std::vector<std::size_t> firmware_of_device;
  for (std::size_t f = 0; f < firmwares.size(); ++f) {
    for (int i = 0; i < firmwares[f].units; ++i) {
      fleet.push_back(factory.create(firmwares[f].model, util::Date(2012, 1, 1),
                                     util::Date(2012, 1, 1)));
      firmware_of_device.push_back(f);
    }
  }

  // Audit: batch GCD over every issued certificate + duplicate detection.
  std::vector<bn::BigInt> moduli;
  moduli.reserve(fleet.size());
  for (const auto& device : fleet) moduli.push_back(device.https_cert->key.n);

  util::ThreadPool pool(0);
  const auto result = batchgcd::batch_gcd_distributed(moduli, 4, &pool);

  std::map<std::string, std::size_t> duplicate_count;
  for (const auto& n : moduli) ++duplicate_count[n.to_hex()];

  struct Row {
    std::size_t factorable = 0;
    std::size_t duplicated = 0;
    std::size_t sound = 0;
    std::vector<bn::BigInt> recovered_primes;
  };
  std::vector<Row> rows(firmwares.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    Row& row = rows[firmware_of_device[i]];
    const auto& divisor = result.divisors[i];
    if (duplicate_count[moduli[i].to_hex()] > 1) {
      ++row.duplicated;
    } else if (!divisor.is_one() && divisor != moduli[i]) {
      ++row.factorable;
      const auto factors = batchgcd::recover_factors(moduli[i], divisor);
      row.recovered_primes.push_back(factors->p);
      row.recovered_primes.push_back(factors->q);
    } else {
      ++row.sound;
    }
  }

  std::printf("== Acme CPE fleet audit (%zu certificates) ==\n", fleet.size());
  analysis::TextTable table({"firmware", "units", "identical keys",
                             "factorable", "sound", "prime generator"});
  for (std::size_t f = 0; f < firmwares.size(); ++f) {
    const auto verdict = fingerprint::classify_openssl(rows[f].recovered_primes);
    table.add_row({firmwares[f].name, std::to_string(firmwares[f].units),
                   std::to_string(rows[f].duplicated),
                   std::to_string(rows[f].factorable),
                   std::to_string(rows[f].sound),
                   to_string(verdict.cls)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: v1.0 collapses to a handful of identical default keys, "
      "v2.0 is factorable\nby batch GCD, v3.0 is clean. This audit takes "
      "seconds — the study's point is that no\nvendor appears to have run "
      "it before (or after) shipping.\n");
  return 0;
}

// Quickstart: the library in ~60 lines.
//
//   1. Generate RSA keys — one healthy, two from a simulated device with the
//      boot-time entropy hole.
//   2. Run batch GCD over the moduli.
//   3. Factor the weak pair and rebuild the private key.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "batchgcd/batch_gcd.hpp"
#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"
#include "rsa/keygen.hpp"

int main() {
  using namespace weakkeys;

  // A healthy key: seeded from a full-entropy source.
  rng::PrngRandomSource healthy_rng(2024);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 512;
  const rsa::RsaPrivateKey healthy = rsa::generate_key(healthy_rng, opts);

  // Two devices of the same model, booting into the same 4-bit entropy
  // state. Each stirs a (device-unique) low-entropy event between its two
  // prime generations — the exact failure mode of Section 2.4.
  const rng::RngFlawModel flaw{.boot_entropy_bits = 4,
                               .divergence_entropy_bits = 40};
  rng::SimulatedUrandom device_a("router-fw-1.0", flaw, /*boot_state=*/7,
                                 /*divergence_seed=*/1111);
  rng::SimulatedUrandom device_b("router-fw-1.0", flaw, /*boot_state=*/7,
                                 /*divergence_seed=*/2222);
  rsa::KeygenEvents stir_a{[&](int prime) {
    if (prime == 1) device_a.stir_divergence_event();
  }};
  rsa::KeygenEvents stir_b{[&](int prime) {
    if (prime == 1) device_b.stir_divergence_event();
  }};
  const rsa::RsaPrivateKey weak_a = rsa::generate_key(device_a, opts, &stir_a);
  const rsa::RsaPrivateKey weak_b = rsa::generate_key(device_b, opts, &stir_b);

  // The attacker's view: three public moduli.
  const std::vector<bn::BigInt> moduli = {healthy.pub.n, weak_a.pub.n,
                                          weak_b.pub.n};
  const auto result = batchgcd::batch_gcd(moduli);

  std::printf("batch GCD over 3 moduli:\n");
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    std::printf("  modulus %zu: divisor %s\n", i,
                result.divisors[i].is_one() ? "1 (safe)"
                                            : result.divisors[i].to_hex().c_str());
  }

  const auto factors = batchgcd::recover_factors(moduli[1], result.divisors[1]);
  if (!factors) {
    std::printf("no factorization recovered (unexpected)\n");
    return 1;
  }
  const rsa::RsaPrivateKey recovered =
      rsa::assemble_private_key(factors->p, factors->q, weak_a.pub.e);
  std::printf("\nrecovered private key matches the device's: %s\n",
              recovered.d == weak_a.d ? "yes" : "no");
  return 0;
}

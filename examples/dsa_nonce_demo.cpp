// dsa_nonce_demo: the DSA half of the 2012 disclosures.
//
// A simulated switch signs periodic telemetry with DSA. Its RNG has the
// boot-time entropy hole, so two reboots land in the same pool state and the
// device signs two different messages with the same nonce. A passive
// observer scanning the signature transcript for repeated r values recovers
// the private key and forges a message.
#include <cstdio>
#include <string>
#include <vector>

#include "dsa/dsa.hpp"
#include "dsa/nonce_attack.hpp"
#include "rng/prng_source.hpp"
#include "rng/urandom.hpp"

int main() {
  using namespace weakkeys;

  std::printf("generating DSA domain parameters (512/160)...\n");
  rng::PrngRandomSource setup(20120201);
  const dsa::DsaParams params = dsa::generate_params(setup, 512, 160);
  const dsa::DsaPrivateKey device_key = dsa::generate_key(params, setup);

  auto bytes = [](const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  };

  // The device's life: sign a message after each boot. Boot entropy: 3 bits.
  const rng::RngFlawModel flaw{.boot_entropy_bits = 3,
                               .divergence_entropy_bits = -1};
  util::Xoshiro256 boot_draws(5);
  std::vector<dsa::ObservedSignature> transcript;
  for (int boot = 0; boot < 12; ++boot) {
    rng::SimulatedUrandom urandom("switch-fw-2.1", flaw, boot_draws(), 0);
    const auto message = bytes("status report #" + std::to_string(boot));
    transcript.push_back({message, dsa::sign(device_key, message, urandom)});
  }
  std::printf("observed %zu signatures from 12 boots of a flawed device\n",
              transcript.size());

  const auto hits =
      dsa::scan_for_nonce_reuse(params, transcript, &device_key.pub);
  if (hits.empty()) {
    std::printf("no nonce reuse in this draw (boot space not yet collided)\n");
    return 1;
  }
  std::printf("nonce reuse found between signatures #%zu and #%zu\n",
              hits[0].first_index, hits[0].second_index);
  std::printf("recovered private key matches: %s\n",
              hits[0].private_key == device_key.x ? "yes" : "no");

  // Forge: sign an attacker-chosen message with the recovered key.
  dsa::DsaPrivateKey stolen;
  stolen.pub = device_key.pub;
  stolen.x = hits[0].private_key;
  rng::PrngRandomSource attacker(99);
  const auto forged_message = bytes("firmware update: attacker.example/fw.bin");
  const auto forged = dsa::sign(stolen, forged_message, attacker);
  std::printf("forged signature verifies under the device's public key: %s\n",
              dsa::verify(device_key.pub, forged_message, forged) ? "yes" : "no");
  return 0;
}

// weak_key_attack: the end-to-end attack from Section 2.1, against a
// simulated vulnerable firewall fleet.
//
// A passive adversary records (a) the TLS certificates a scan would see and
// (b) one RSA-key-exchange handshake against a victim device. Because the
// fleet's RNG has the boot-time entropy hole, batch GCD over the observed
// certificates factors the victim's modulus; the adversary rebuilds the
// private key, decrypts the recorded session key, and re-signs a forged
// certificate to demonstrate impersonation.
#include <cstdio>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "cert/certificate.hpp"
#include "netsim/device.hpp"
#include "rng/prng_source.hpp"
#include "rsa/pkcs1.hpp"

int main() {
  using namespace weakkeys;

  // --- The fleet: 24 firewalls of one model with a flawed RNG -------------
  netsim::DeviceModel model;
  model.vendor = "Acme";
  model.model = "FireShield-100";
  model.key_bits = 512;
  model.flawed_rng = rng::RngFlawModel{.boot_entropy_bits = 3,
                                       .divergence_entropy_bits = 40};
  model.flawed_from = util::Date(2008, 1, 1);

  netsim::DeviceFactory factory(/*seed=*/1337, /*miller_rabin_rounds=*/8);
  std::vector<netsim::Device> fleet;
  for (int i = 0; i < 24; ++i) {
    fleet.push_back(factory.create(model, util::Date(2011, 3, 1),
                                   util::Date(2011, 3, 1)));
  }

  // --- The victim encrypts a session key to its own certificate ----------
  const netsim::Device& victim = fleet[5];
  rng::PrngRandomSource client_rng(42);
  const std::vector<std::uint8_t> premaster = {0x03, 0x03, 0xaa, 0xbb, 0xcc,
                                               0xdd, 0xee, 0xff};
  const auto recorded_handshake =
      rsa::encrypt(victim.https_cert->key, premaster, client_rng);
  std::printf("recorded one RSA key exchange against %s (victim device #5)\n",
              victim.ip.to_string().c_str());

  // --- The adversary: certificates only -----------------------------------
  std::vector<bn::BigInt> observed;
  observed.reserve(fleet.size());
  for (const auto& device : fleet) observed.push_back(device.https_cert->key.n);
  const auto result = batchgcd::batch_gcd(observed);

  const auto& divisor = result.divisors[5];
  if (divisor.is_one() || divisor == observed[5]) {
    std::printf("victim not factorable in this draw — fleet too small\n");
    return 1;
  }
  const auto factors = batchgcd::recover_factors(observed[5], divisor);
  const rsa::RsaPrivateKey stolen = rsa::assemble_private_key(
      factors->p, factors->q, victim.https_cert->key.e);
  std::printf("batch GCD factored the victim's modulus "
              "(shares a prime with %zu fleet keys)\n",
              result.vulnerable_indices().size() - 1);

  // --- Passive decryption --------------------------------------------------
  const auto decrypted = rsa::decrypt(stolen, recorded_handshake);
  std::printf("decrypted session key matches: %s\n",
              decrypted == premaster ? "yes" : "no");

  // --- Active impersonation: forge a certificate for the victim's name ----
  cert::Certificate forged = *victim.https_cert;
  forged.serial += 1;  // a "renewed" certificate
  forged.signature = rsa::sign(stolen, forged.encode_tbs());
  std::printf("forged certificate verifies under the victim's public key: %s\n",
              forged.verify_signature(victim.https_cert->key) ? "yes" : "no");

  std::printf(
      "\nmitigation check: a healthy device (full boot entropy) in the same "
      "fleet is unaffected:\n");
  netsim::DeviceModel healthy = model;
  healthy.flawed_from.reset();
  const auto safe = factory.create(healthy, util::Date(2011, 3, 1),
                                   util::Date(2011, 3, 1));
  auto with_safe = observed;
  with_safe.push_back(safe.https_key.pub.n);
  const auto recheck = batchgcd::batch_gcd(with_safe);
  std::printf("  divisor for the healthy key: %s\n",
              recheck.divisors.back().is_one() ? "1 (safe)" : "FACTORED?!");
  return 0;
}

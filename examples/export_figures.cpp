// export_figures: machine-readable outputs for external plotting.
//
// Runs (or reloads) the study corpus and writes one CSV per paper figure
// into an output directory, plus a combined per-vendor file — the pipeline
// you would hand to gnuplot/matplotlib to redraw Figures 1 and 3-10.
//
// Usage: ./build/examples/export_figures [output_dir]   (default: figures/)
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "analysis/csv.hpp"
#include "core/study.hpp"
#include "netsim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace weakkeys;
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "figures";
  std::filesystem::create_directories(out_dir);

  core::StudyConfig config;
  config.sim.scale = 0.2;
  config.cache_path = "weakkeys_corpus.cache";
  config.log = [](const std::string& m) {
    std::fprintf(stderr, "[study] %s\n", m.c_str());
  };
  core::Study study(config);
  study.run();
  const auto builder = study.series_builder();

  auto write = [&](const std::string& name,
                   const analysis::VendorSeries& series) {
    const auto path = out_dir / (name + ".csv");
    std::ofstream os(path);
    analysis::write_series_csv(os, series);
    std::fprintf(stderr, "wrote %s (%zu points)\n", path.c_str(),
                 series.points.size());
  };

  write("fig1_overall", builder.overall_series());
  write("fig3_juniper", builder.vendor_series("Juniper"));
  write("fig4_innominate", builder.vendor_series("Innominate"));
  write("fig5_ibm", builder.vendor_series("IBM"));
  write("fig6_cisco", builder.vendor_series("Cisco"));
  for (const auto& eol : netsim::cisco_eol_dates()) {
    write("fig7_cisco_" + eol.model, builder.vendor_series("Cisco", eol.model));
  }
  write("fig8_hp_ilo", builder.vendor_series("Hewlett-Packard"));
  std::vector<analysis::VendorSeries> fig9, fig10;
  for (const char* vendor : {"Thomson", "Fritz!Box", "Linksys", "Fortinet",
                             "ZyXEL", "Dell", "Kronos", "Xerox", "McAfee",
                             "TP-LINK"}) {
    fig9.push_back(builder.vendor_series(vendor));
  }
  for (const char* vendor :
       {"ADTRAN", "D-Link", "Huawei", "Sangfor", "Schmid Telecom"}) {
    fig10.push_back(builder.vendor_series(vendor));
  }
  {
    std::ofstream os(out_dir / "fig9_no_response.csv");
    analysis::write_multi_series_csv(os, fig9);
  }
  {
    std::ofstream os(out_dir / "fig10_newly_vulnerable.csv");
    analysis::write_multi_series_csv(os, fig10);
  }
  std::fprintf(stderr, "wrote %s and %s\n",
               (out_dir / "fig9_no_response.csv").c_str(),
               (out_dir / "fig10_newly_vulnerable.csv").c_str());
  std::printf("exported figure CSVs to %s\n", out_dir.c_str());
  return 0;
}

// factor_keyring: a batch-GCD CLI in the spirit of fastgcd / factorable.net.
//
// Reads RSA moduli (hex, one per line) from a file or stdin, runs the
// distributed batch GCD across all cores, and prints every factorable
// modulus with its recovered factors and a divisor classification
// (shared prime vs bit-error vs duplicate).
//
// Usage:
//   ./build/examples/factor_keyring [moduli.txt] [k-subsets]
//   (no arguments: demonstrates on a built-in synthetic keyring)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "batchgcd/distributed.hpp"
#include "fingerprint/divisor_class.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace weakkeys;

std::vector<bn::BigInt> read_moduli(std::istream& in) {
  std::vector<bn::BigInt> out;
  std::string line;
  while (std::getline(in, line)) {
    // Trim whitespace; skip blanks and comments.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    if (token.empty() || token[0] == '#') continue;
    out.push_back(bn::BigInt::from_hex(token));
  }
  return out;
}

std::vector<bn::BigInt> demo_keyring() {
  std::fprintf(stderr,
               "no input file: generating a demo keyring "
               "(200 sound keys + 3 sharing a prime + 1 corrupted)...\n");
  rng::PrngRandomSource rng(20121108);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 256;
  opts.sieve_primes = 256;
  opts.miller_rabin_rounds = 6;
  std::vector<bn::BigInt> moduli;
  for (int i = 0; i < 200; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  const bn::BigInt shared = rsa::generate_prime(rng, 128, opts);
  for (int i = 0; i < 3; ++i) {
    moduli.push_back(shared * rsa::generate_prime(rng, 128, opts));
  }
  // One modulus corrupted by a bit flip, plus a second corrupted copy so the
  // GCD has a smooth partner to find.
  const bn::BigInt good = moduli[0];
  moduli.push_back(good + (bn::BigInt(1) << 17));
  moduli.push_back(good + (bn::BigInt(1) << 33));
  return moduli;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<bn::BigInt> moduli;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    moduli = read_moduli(in);
  } else {
    moduli = demo_keyring();
  }
  const std::size_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  std::fprintf(stderr, "running batch GCD over %zu moduli (k=%zu)...\n",
               moduli.size(), k);
  util::ThreadPool pool(0);
  const auto result = batchgcd::batch_gcd_distributed(moduli, k, &pool);

  std::size_t factorable = 0, bit_errors = 0, duplicates = 0;
  for (std::size_t i = 0; i < moduli.size(); ++i) {
    const auto& divisor = result.divisors[i];
    if (divisor.is_one()) continue;
    const auto verdict = fingerprint::classify_divisor(moduli[i], divisor);
    switch (verdict.cls) {
      case fingerprint::DivisorClass::kSharedPrime: {
        ++factorable;
        const auto factors = batchgcd::recover_factors(moduli[i], divisor);
        std::printf("FACTORED modulus[%zu]\n  n = %s\n  p = %s\n  q = %s\n", i,
                    moduli[i].to_hex().c_str(), factors->p.to_hex().c_str(),
                    factors->q.to_hex().c_str());
        break;
      }
      case fingerprint::DivisorClass::kSmoothBitError:
        ++bit_errors;
        std::printf(
            "BIT-ERROR modulus[%zu]: smooth divisor %s (corrupted key, "
            "excluded)\n",
            i, verdict.smooth_part.to_hex().c_str());
        break;
      case fingerprint::DivisorClass::kFullModulus:
        ++duplicates;
        std::printf("DUPLICATE modulus[%zu]: shares both factors\n", i);
        break;
      case fingerprint::DivisorClass::kOther:
        std::printf("UNCLASSIFIED divisor for modulus[%zu]: %s\n", i,
                    divisor.to_hex().c_str());
        break;
    }
  }
  std::fprintf(stderr,
               "done: %zu factored, %zu bit errors, %zu duplicate-type, "
               "%zu sound\n",
               factorable, bit_errors, duplicates,
               moduli.size() - factorable - bit_errors - duplicates);
  return 0;
}

// gcd_worker: one cluster worker process. Spawned by
// cluster::ProcessCoordinator (never run by hand in normal operation);
// connects back to the coordinator, receives subset data and task
// assignments over the framed protocol, and streams back verified-upstream
// divisor claims until told to shut down.
//
// Usage:
//   gcd_worker --port P --worker-id W
//              [--address 127.0.0.1] [--connect-timeout-ms 10000]
//              [--seed S --frame-drop P --frame-garble P --frame-delay P
//               --frame-delay-ms MS]
//
// The --frame-* flags enable deterministic fault injection on this worker's
// *outbound* frames (chaos tests); the coordinator injects its own side.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/worker.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P --worker-id W [--address A] "
               "[--connect-timeout-ms MS] [--seed S] [--frame-drop P] "
               "[--frame-garble P] [--frame-delay P] [--frame-delay-ms MS]\n",
               argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  weakkeys::cluster::WorkerConfig config;
  bool have_port = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--port" && (value = next())) {
      config.port = static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
      have_port = true;
    } else if (arg == "--worker-id" && (value = next())) {
      config.worker_id =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--address" && (value = next())) {
      config.coordinator_address = value;
    } else if (arg == "--connect-timeout-ms" && (value = next())) {
      config.connect_timeout =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--seed" && (value = next())) {
      config.faults.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--frame-drop" && (value = next())) {
      config.faults.frame_drop_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-garble" && (value = next())) {
      config.faults.frame_garble_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-delay" && (value = next())) {
      config.faults.frame_delay_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-delay-ms" && (value = next())) {
      config.faults.frame_delay_ms =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--fault-crash" && (value = next())) {
      config.faults.crash_probability = std::strtod(value, nullptr);
    } else if (arg == "--fault-straggle" && (value = next())) {
      config.faults.straggle_probability = std::strtod(value, nullptr);
    } else if (arg == "--fault-corrupt" && (value = next())) {
      config.faults.corrupt_probability = std::strtod(value, nullptr);
    } else if (arg == "--straggle-ms" && (value = next())) {
      config.straggle_sleep =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_port) return usage(argv[0]);

  config.log = [](const std::string& line) {
    std::fprintf(stderr, "gcd_worker: %s\n", line.c_str());
  };
  return weakkeys::cluster::run_worker(config);
}

// gcd_worker: one cluster worker process. Normally spawned by
// cluster::ProcessCoordinator; with --connect it instead dials out to a
// listening coordinator as a *remote* worker (same protocol, nobody forked
// it). Either way it receives streamed subset data and task assignments
// over the framed protocol and ships back verified-upstream divisor claims
// until told to shut down.
//
// Usage:
//   gcd_worker --port P --worker-id W            (spawned, loopback)
//   gcd_worker --connect HOST:PORT --worker-id W (dial-out remote worker)
//              [--address 127.0.0.1] [--connect-timeout-ms 10000]
//              [--session-reconnect] [--reconnect-window-ms MS]
//              [--ping-deadline-ms MS] [--keepalive]
//              [--seed S --frame-drop P --frame-garble P --frame-delay P
//               --frame-delay-ms MS]
//              [--conn-disconnect P --conn-partition P --conn-half-open P
//               --conn-drip P --conn-partition-ms MS --conn-drip-ms MS]
//
// The --frame-* / --conn-* flags enable deterministic fault injection on
// this worker's *outbound* link (chaos tests); the coordinator injects its
// own side.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/worker.hpp"
#include "obs/profiler.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--port P | --connect HOST:PORT) --worker-id W\n"
      "  [--address A] [--connect-timeout-ms MS]\n"
      "  [--session-reconnect] [--reconnect-window-ms MS]\n"
      "  [--ping-deadline-ms MS] [--keepalive]\n"
      "  [--telemetry-interval-ms MS] [--no-telemetry] [--protocol-v2]\n"
      "  [--profile HZ] [--profile-out PATH] [--mem-budget-mb N]\n"
      "  [--spill-dir DIR] [--spill-threshold-mb N]\n"
      "  [--seed S] [--frame-drop P] [--frame-garble P] [--frame-delay P]\n"
      "  [--frame-delay-ms MS] [--conn-disconnect P] [--conn-partition P]\n"
      "  [--conn-half-open P] [--conn-drip P] [--conn-partition-ms MS]\n"
      "  [--conn-drip-ms MS]\n",
      argv0);
  return 64;  // EX_USAGE
}

}  // namespace

int main(int argc, char** argv) {
  weakkeys::cluster::WorkerConfig config;
  bool have_port = false;
  bool have_spill_threshold = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--port" && (value = next())) {
      config.port = static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
      have_port = true;
    } else if (arg == "--connect" && (value = next())) {
      // HOST:PORT in one flag — the dial-out remote-worker mode.
      const std::string target = value;
      const std::size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon + 1 >= target.size()) {
        return usage(argv[0]);
      }
      config.coordinator_address = target.substr(0, colon);
      config.port = static_cast<std::uint16_t>(
          std::strtoul(target.c_str() + colon + 1, nullptr, 10));
      have_port = true;
    } else if (arg == "--worker-id" && (value = next())) {
      config.worker_id =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--address" && (value = next())) {
      config.coordinator_address = value;
    } else if (arg == "--connect-timeout-ms" && (value = next())) {
      config.connect_timeout =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--session-reconnect") {
      config.session_reconnect = true;
    } else if (arg == "--reconnect-window-ms" && (value = next())) {
      config.reconnect_window =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--ping-deadline-ms" && (value = next())) {
      config.ping_deadline =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--keepalive") {
      config.tcp_keepalive = true;
    } else if (arg == "--telemetry-interval-ms" && (value = next())) {
      config.telemetry_interval =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--no-telemetry") {
      config.telemetry_interval = std::chrono::milliseconds(0);
    } else if (arg == "--profile" && (value = next())) {
      config.profile_hz = std::strtod(value, nullptr);
    } else if (arg == "--profile-out" && (value = next())) {
      config.profile_out = value;
    } else if (arg == "--mem-budget-mb" && (value = next())) {
      config.mem_budget_mb = std::strtoull(value, nullptr, 10);
    } else if (arg == "--spill-dir" && (value = next())) {
      config.spill_dir = value;
    } else if (arg == "--spill-threshold-mb" && (value = next())) {
      config.spill_threshold_mb = std::strtoull(value, nullptr, 10);
      have_spill_threshold = true;
    } else if (arg == "--protocol-v2") {
      // Pin the legacy dialect: v2 Hello/Pong bodies, no telemetry export.
      // Compatibility testing against a v3 coordinator.
      config.protocol_version = 2;
    } else if (arg == "--seed" && (value = next())) {
      config.faults.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--frame-drop" && (value = next())) {
      config.faults.frame_drop_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-garble" && (value = next())) {
      config.faults.frame_garble_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-delay" && (value = next())) {
      config.faults.frame_delay_probability = std::strtod(value, nullptr);
    } else if (arg == "--frame-delay-ms" && (value = next())) {
      config.faults.frame_delay_ms =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--conn-disconnect" && (value = next())) {
      config.faults.conn_disconnect_probability = std::strtod(value, nullptr);
    } else if (arg == "--conn-partition" && (value = next())) {
      config.faults.conn_partition_probability = std::strtod(value, nullptr);
    } else if (arg == "--conn-half-open" && (value = next())) {
      config.faults.conn_half_open_probability = std::strtod(value, nullptr);
    } else if (arg == "--conn-drip" && (value = next())) {
      config.faults.conn_slow_drip_probability = std::strtod(value, nullptr);
    } else if (arg == "--conn-partition-ms" && (value = next())) {
      config.faults.conn_partition_ms =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--conn-drip-ms" && (value = next())) {
      config.faults.conn_drip_delay_ms =
          static_cast<std::uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--fault-crash" && (value = next())) {
      config.faults.crash_probability = std::strtod(value, nullptr);
    } else if (arg == "--fault-straggle" && (value = next())) {
      config.faults.straggle_probability = std::strtod(value, nullptr);
    } else if (arg == "--fault-corrupt" && (value = next())) {
      config.faults.corrupt_probability = std::strtod(value, nullptr);
    } else if (arg == "--straggle-ms" && (value = next())) {
      config.straggle_sleep =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }
  if (!have_port) return usage(argv[0]);

  // Env fallback: coordinator-spawned workers inherit the parent's
  // environment, so WEAKKEYS_PROFILE_HZ / WEAKKEYS_MEM_BUDGET_MB on the
  // coordinator reach every worker without new spawn plumbing. Explicit
  // flags win.
  if (config.profile_hz <= 0) {
    config.profile_hz = weakkeys::obs::profile_hz_from_env();
  }
  if (config.mem_budget_mb == 0) {
    if (const char* mb = std::getenv("WEAKKEYS_MEM_BUDGET_MB")) {
      config.mem_budget_mb = std::strtoull(mb, nullptr, 10);
    }
  }
  if (config.spill_dir.empty()) {
    if (const char* dir = std::getenv("WEAKKEYS_SPILL_DIR")) {
      config.spill_dir = dir;
    }
  }
  if (!have_spill_threshold) {
    if (const char* mb = std::getenv("WEAKKEYS_SPILL_THRESHOLD_MB")) {
      config.spill_threshold_mb = std::strtoull(mb, nullptr, 10);
    }
  }
  if (config.profile_hz > 0 && config.profile_out.empty()) {
    // Every worker process needs its own collapsed-stack file; derive a
    // per-worker name from the shared env path (or a cwd default).
    const std::string env_out = weakkeys::obs::profile_out_from_env();
    const std::string id = std::to_string(config.worker_id);
    config.profile_out = env_out.empty()
                             ? "PROFILE_worker" + id + ".folded"
                             : env_out + ".worker" + id;
  }

  config.log = [](const std::string& line) {
    std::fprintf(stderr, "gcd_worker: %s\n", line.c_str());
  };
  return weakkeys::cluster::run_worker(config);
}

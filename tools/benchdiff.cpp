// benchdiff: performance-regression gate for the perf_* suites.
//
//   benchdiff [--threshold T] [--noise-floor-ns N]
//             [--mem-threshold T] [--mem-floor-bytes N]
//             [--markdown PATH] [--json PATH]
//             <baseline.json> <candidate.json>
//
// Compares a fresh BENCH_<suite>.json against a committed baseline (see
// bench/baselines/) under the threshold model in DESIGN.md §5f and prints
// the markdown report to stdout.
//
// Exit codes: 0 = no regressions, 1 = at least one regression,
//             2 = usage / IO / parse error.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/benchdiff.hpp"
#include "util/atomic_file.hpp"

namespace {

constexpr const char* kUsage =
    "usage: benchdiff [--threshold T] [--noise-floor-ns N]\n"
    "                 [--mem-threshold T] [--mem-floor-bytes N]\n"
    "                 [--markdown PATH] [--json PATH]\n"
    "                 <baseline.json> <candidate.json>\n"
    "\n"
    "  --threshold T        relative delta beyond which a benchmark is a\n"
    "                       regression/improvement (default 0.10 = 10%%)\n"
    "  --noise-floor-ns N   absolute deltas below N ns are never a verdict\n"
    "                       (default 5000)\n"
    "  --mem-threshold T    relative gate for the suite peak-RSS comparison\n"
    "                       (default 0.10; ignored when either file lacks\n"
    "                       peak_rss_bytes)\n"
    "  --mem-floor-bytes N  peak-RSS deltas below N bytes are never a\n"
    "                       verdict (default 16777216 = 16 MiB)\n"
    "  --markdown PATH      also write the markdown report to PATH\n"
    "  --json PATH          also write the machine-readable report to PATH\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("benchdiff: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& body) {
  // CI consumes these reports from another step; an interrupted benchdiff
  // must leave either the old report or the new one, never a torn file.
  weakkeys::util::atomic_write_file(path, body);
}

}  // namespace

int main(int argc, char** argv) {
  weakkeys::obs::BenchDiffOptions options;
  std::string markdown_path;
  std::string json_path;
  std::string baseline_path;
  std::string candidate_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::runtime_error("benchdiff: " + arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--threshold") {
        options.threshold = std::stod(next());
      } else if (arg == "--noise-floor-ns") {
        options.noise_floor_ns = std::stod(next());
      } else if (arg == "--mem-threshold") {
        options.mem_threshold = std::stod(next());
      } else if (arg == "--mem-floor-bytes") {
        options.mem_floor_bytes = std::stod(next());
      } else if (arg == "--markdown") {
        markdown_path = next();
      } else if (arg == "--json") {
        json_path = next();
      } else if (arg == "--help" || arg == "-h") {
        std::fputs(kUsage, stdout);
        return 0;
      } else if (!arg.empty() && arg[0] == '-') {
        throw std::runtime_error("benchdiff: unknown flag " + arg);
      } else if (baseline_path.empty()) {
        baseline_path = arg;
      } else if (candidate_path.empty()) {
        candidate_path = arg;
      } else {
        throw std::runtime_error("benchdiff: unexpected argument " + arg);
      }
    }
    if (baseline_path.empty() || candidate_path.empty()) {
      std::fputs(kUsage, stderr);
      return 2;
    }

    const auto baseline =
        weakkeys::obs::parse_bench_json(read_file(baseline_path));
    const auto candidate =
        weakkeys::obs::parse_bench_json(read_file(candidate_path));
    const auto report =
        weakkeys::obs::diff_benchmarks(baseline, candidate, options);

    const std::string markdown = report.markdown();
    std::fputs(markdown.c_str(), stdout);
    if (!markdown_path.empty()) write_file(markdown_path, markdown);
    if (!json_path.empty()) write_file(json_path, report.to_json() + "\n");
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}

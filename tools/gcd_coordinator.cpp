// gcd_coordinator: run the multi-process batch-GCD cluster from the
// command line — the operator-facing face of cluster::batch_gcd_cluster().
//
// Two modes over the same deterministic corpus (--corpus-seed/--corpus-count
// regenerate bit-identical moduli in every process):
//
//   --reference           run single-process batch_gcd() and print the
//                         vulnerable set; the ground truth a cluster run
//                         must reproduce byte-for-byte
//   (default)             coordinate a cluster: fork local workers and/or
//                         listen for remote gcd_worker --connect dial-ins,
//                         then print the vulnerable set in the same format
//
// The CI remote-chaos job diffs the two outputs under connection faults and
// worker kills — the paper's core claim (the vulnerable set is a property
// of the corpus, not of the execution) as a shell pipeline.
//
// Usage:
//   gcd_coordinator --reference --corpus-seed S --corpus-count N
//   gcd_coordinator [--corpus-seed S] [--corpus-count N] [--subsets K]
//                   [--workers W] [--worker-binary PATH]
//                   [--remote-workers R] [--bind ADDR] [--port P]
//                   [--port-file PATH] [--grace-ms MS] [--chunk-bytes B]
//                   [--window CHUNKS] [--retransmit-ms MS]
//                   [--task-timeout-ms MS] [--spawn-timeout-ms MS]
//                   [--restart-budget N] [--checkpoint PATH] [--quiet]
//                   [--profile HZ] [--profile-out PATH] [--mem-budget-mb N]
//                   [--spill-dir DIR] [--spill-threshold-mb N]
//                   [--spill-metrics PATH] [--storage-seed S]
//                   [--storage-short-write P] [--storage-fsync-fail P]
//                   [--storage-bit-flip P] [--storage-enospc P]
//                   [--storage-slow P]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "batchgcd/batch_gcd.hpp"
#include "cluster/process_coordinator.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "rng/prng_source.hpp"
#include "rsa/keygen.hpp"
#include "util/atomic_file.hpp"

namespace {

using weakkeys::bn::BigInt;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--reference] [--corpus-seed S] [--corpus-count N]\n"
      "  [--subsets K] [--workers W] [--worker-binary PATH]\n"
      "  [--remote-workers R] [--bind ADDR] [--port P] [--port-file PATH]\n"
      "  [--grace-ms MS] [--chunk-bytes B] [--window CHUNKS]\n"
      "  [--retransmit-ms MS] [--task-timeout-ms MS] [--spawn-timeout-ms MS]\n"
      "  [--restart-budget N] [--checkpoint PATH] [--quiet]\n"
      "  [--fleet-trace PATH] [--telemetry-interval-ms MS]\n"
      "  [--profile HZ] [--profile-out PATH] [--mem-budget-mb N]\n"
      "  [--spill-dir DIR] [--spill-threshold-mb N] [--spill-metrics PATH]\n"
      "  [--storage-seed S] [--storage-short-write P] [--storage-fsync-fail P]\n"
      "  [--storage-bit-flip P] [--storage-enospc P] [--storage-slow P]\n",
      argv0);
  return 64;  // EX_USAGE
}

/// Same planted-structure corpus as the test suite: healthy keys plus
/// shared-prime pairs, a triple star, and a duplicated modulus. Seeded, so
/// --reference and cluster runs (even on other machines) see identical
/// moduli.
std::vector<BigInt> make_corpus(std::size_t healthy, std::uint64_t seed) {
  namespace rsa = weakkeys::rsa;
  std::vector<BigInt> moduli;
  weakkeys::rng::PrngRandomSource rng(seed);
  rsa::KeygenOptions opts;
  opts.modulus_bits = 128;
  opts.style = rsa::PrimeStyle::kPlain;
  opts.miller_rabin_rounds = 8;
  for (std::size_t i = 0; i < healthy; ++i) {
    moduli.push_back(rsa::generate_key(rng, opts).pub.n);
  }
  std::vector<BigInt> p;
  for (int i = 0; i < 12; ++i) {
    p.push_back(rsa::generate_prime(rng, 64, opts));
  }
  moduli.push_back(p[0] * p[1]);  // pair sharing p[0]
  moduli.push_back(p[0] * p[2]);
  moduli.push_back(p[3] * p[4]);  // star of three sharing p[3]
  moduli.push_back(p[3] * p[5]);
  moduli.push_back(p[3] * p[6]);
  moduli.push_back(p[7] * p[8]);  // duplicate pair
  moduli.push_back(p[7] * p[8]);
  return moduli;
}

/// The canonical output both modes share: one line per vulnerable modulus,
/// index and nontrivial divisor. diff(1)-able across engines.
void print_vulnerable(const std::vector<BigInt>& divisors) {
  const BigInt one(1);
  for (std::size_t i = 0; i < divisors.size(); ++i) {
    if (divisors[i] > one) {
      std::printf("%zu %s\n", i, divisors[i].to_hex().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool reference = false;
  bool quiet = false;
  std::uint64_t corpus_seed = 1;
  std::size_t corpus_count = 40;
  std::string port_file;
  double profile_hz = 0;
  std::string profile_out;
  std::uint64_t mem_budget_mb = 0;
  std::string spill_dir;
  std::uint64_t spill_threshold_mb = 0;  // 0 = always spill when dir set
  bool have_spill_threshold = false;
  std::string spill_metrics_path;
  weakkeys::util::FaultConfig storage_faults;
  weakkeys::cluster::ClusterConfig config;
  config.workers = 2;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--reference") {
      reference = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--corpus-seed" && (value = next())) {
      corpus_seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--corpus-count" && (value = next())) {
      corpus_count = std::strtoull(value, nullptr, 10);
    } else if (arg == "--subsets" && (value = next())) {
      config.subsets = std::strtoull(value, nullptr, 10);
    } else if (arg == "--workers" && (value = next())) {
      config.workers = std::strtoull(value, nullptr, 10);
    } else if (arg == "--worker-binary" && (value = next())) {
      config.worker_binary = value;
    } else if (arg == "--remote-workers" && (value = next())) {
      config.remote_workers = std::strtoull(value, nullptr, 10);
    } else if (arg == "--bind" && (value = next())) {
      config.bind_address = value;
    } else if (arg == "--port" && (value = next())) {
      config.port =
          static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--port-file" && (value = next())) {
      port_file = value;
    } else if (arg == "--grace-ms" && (value = next())) {
      config.session_grace =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--chunk-bytes" && (value = next())) {
      config.stream_chunk_bytes = std::strtoull(value, nullptr, 10);
    } else if (arg == "--window" && (value = next())) {
      config.stream_window_chunks = std::strtoull(value, nullptr, 10);
    } else if (arg == "--retransmit-ms" && (value = next())) {
      config.stream_retransmit =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--task-timeout-ms" && (value = next())) {
      config.task_timeout =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--spawn-timeout-ms" && (value = next())) {
      config.spawn_timeout =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--restart-budget" && (value = next())) {
      config.restart_budget = std::strtoull(value, nullptr, 10);
    } else if (arg == "--checkpoint" && (value = next())) {
      config.checkpoint_path = value;
    } else if (arg == "--fleet-trace" && (value = next())) {
      // Fleet-merged Chrome trace (assign spans + clock-rebased worker task
      // spans); fleet metrics JSON lands next to it at <PATH>.metrics.json.
      config.fleet_trace_path = value;
    } else if (arg == "--telemetry-interval-ms" && (value = next())) {
      config.telemetry_interval =
          std::chrono::milliseconds(std::strtol(value, nullptr, 10));
    } else if (arg == "--profile" && (value = next())) {
      profile_hz = std::strtod(value, nullptr);
    } else if (arg == "--profile-out" && (value = next())) {
      profile_out = value;
    } else if (arg == "--mem-budget-mb" && (value = next())) {
      mem_budget_mb = std::strtoull(value, nullptr, 10);
    } else if (arg == "--spill-dir" && (value = next())) {
      spill_dir = value;
    } else if (arg == "--spill-threshold-mb" && (value = next())) {
      spill_threshold_mb = std::strtoull(value, nullptr, 10);
      have_spill_threshold = true;
    } else if (arg == "--spill-metrics" && (value = next())) {
      spill_metrics_path = value;
    } else if (arg == "--storage-seed" && (value = next())) {
      storage_faults.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--storage-short-write" && (value = next())) {
      storage_faults.storage_short_write_probability =
          std::strtod(value, nullptr);
    } else if (arg == "--storage-fsync-fail" && (value = next())) {
      storage_faults.storage_fsync_fail_probability =
          std::strtod(value, nullptr);
    } else if (arg == "--storage-bit-flip" && (value = next())) {
      storage_faults.storage_bit_flip_probability =
          std::strtod(value, nullptr);
    } else if (arg == "--storage-enospc" && (value = next())) {
      storage_faults.storage_enospc_probability = std::strtod(value, nullptr);
    } else if (arg == "--storage-slow" && (value = next())) {
      storage_faults.storage_slow_probability = std::strtod(value, nullptr);
    } else {
      return usage(argv[0]);
    }
  }

  // Env fallback mirrors gcd_worker, so one environment profiles the whole
  // process tree (spawned workers inherit it). Explicit flags win.
  if (profile_hz <= 0) profile_hz = weakkeys::obs::profile_hz_from_env();
  if (mem_budget_mb == 0) {
    if (const char* mb = std::getenv("WEAKKEYS_MEM_BUDGET_MB")) {
      mem_budget_mb = std::strtoull(mb, nullptr, 10);
    }
  }
  if (profile_hz > 0 && profile_out.empty()) {
    const std::string env_out = weakkeys::obs::profile_out_from_env();
    profile_out =
        env_out.empty() ? "PROFILE_gcd_coordinator.folded" : env_out;
  }
  if (profile_hz > 0 || mem_budget_mb > 0) {
    if (weakkeys::obs::mem::supported()) weakkeys::obs::mem::enable();
    if (mem_budget_mb > 0) {
      weakkeys::obs::mem::set_budget_bytes(mem_budget_mb * 1024 * 1024);
    }
  }
  std::unique_ptr<weakkeys::obs::Profiler> profiler;
  if (profile_hz > 0) {
    weakkeys::obs::ProfilerConfig prof_config;
    prof_config.hz = profile_hz;
    prof_config.out_path = profile_out;
    prof_config.writer = [](const std::string& path,
                            const std::string& content) {
      try {
        weakkeys::util::atomic_write_file(path, content);
        return true;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gcd_coordinator: %s\n", e.what());
        return false;
      }
    };
    profiler = std::make_unique<weakkeys::obs::Profiler>(
        std::move(prof_config));
    profiler->start();
  }

  // Spill knobs fall back to the environment (like the profiler knobs) so
  // one environment configures the whole process tree; explicit flags win.
  if (spill_dir.empty()) {
    if (const char* dir = std::getenv("WEAKKEYS_SPILL_DIR")) spill_dir = dir;
  }
  if (!have_spill_threshold) {
    if (const char* mb = std::getenv("WEAKKEYS_SPILL_THRESHOLD_MB")) {
      spill_threshold_mb = std::strtoull(mb, nullptr, 10);
    }
  }

  const std::vector<BigInt> moduli = make_corpus(corpus_count, corpus_seed);

  if (reference) {
    // Single-process ground truth; with --spill-dir it runs out-of-core
    // (the disk-chaos CI path: deterministic storage faults via the
    // --storage-* schedule, SIGKILL/resume via the generation-stamped
    // level files, spill.* counters dumped for invariant checks).
    weakkeys::obs::MetricsRegistry registry;
    weakkeys::util::FaultInjector storage_injector(storage_faults);
    weakkeys::batchgcd::TreeStorage storage;
    storage.spill_dir = spill_dir;
    storage.spill_threshold_bytes = spill_threshold_mb * 1024 * 1024;
    storage.registry = &registry;
    if (storage_faults.any_storage_faults()) {
      storage.injector = &storage_injector;
    }
    try {
      print_vulnerable(
          weakkeys::batchgcd::batch_gcd(
              moduli, nullptr, storage.enabled() ? &storage : nullptr)
              .divisors);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gcd_coordinator: %s\n", e.what());
      if (profiler) profiler->stop();
      return 1;
    }
    if (!spill_metrics_path.empty()) {
      try {
        weakkeys::util::atomic_write_file(spill_metrics_path,
                                          registry.to_json());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gcd_coordinator: %s\n", e.what());
      }
    }
    if (profiler) profiler->stop();
    return 0;
  }

  if (!spill_dir.empty()) {
    // Cluster mode: the workers build the trees, so export the spill knobs
    // for the spawned gcd_worker processes to inherit.
    ::setenv("WEAKKEYS_SPILL_DIR", spill_dir.c_str(), 0);
    ::setenv("WEAKKEYS_SPILL_THRESHOLD_MB",
             std::to_string(spill_threshold_mb).c_str(), 0);
  }

  if (!quiet) {
    config.log = [](const std::string& line) {
      std::fprintf(stderr, "gcd_coordinator: %s\n", line.c_str());
    };
  }
  if (!port_file.empty()) {
    config.on_listen = [&port_file](std::uint16_t port) {
      std::FILE* f = std::fopen((port_file + ".part").c_str(), "w");
      if (!f) return;
      std::fprintf(f, "%u\n", port);
      std::fclose(f);
      // rename so readers polling the path never see a partial write
      std::rename((port_file + ".part").c_str(), port_file.c_str());
    };
  }

  try {
    weakkeys::cluster::ClusterStats stats;
    const auto result =
        weakkeys::cluster::batch_gcd_cluster(moduli, config, &stats);
    if (profiler) {
      profiler->stop();
      std::fprintf(stderr, "gcd_coordinator: profiler wrote %s (%llu samples)\n",
                   profile_out.c_str(),
                   static_cast<unsigned long long>(profiler->samples()));
    }
    if (weakkeys::obs::mem::consume_budget_alarm()) {
      std::fprintf(stderr,
                   "gcd_coordinator: memory budget exceeded "
                   "(soft alarm; run completed)\n");
    }
    print_vulnerable(result.divisors);
    std::fprintf(stderr,
                 "gcd_coordinator: done (%zu tasks, %zu reconnects, "
                 "%zu duplicate results, %llu chunks, %llu stream resumes)\n",
                 stats.tasks_executed + stats.tasks_resumed, stats.reconnects,
                 stats.duplicate_results,
                 static_cast<unsigned long long>(stats.stream_chunks_sent),
                 static_cast<unsigned long long>(stats.stream_resumes));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gcd_coordinator: %s\n", e.what());
    return 1;
  }
}
